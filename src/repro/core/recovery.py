"""Crash recovery and the Crash Coordinator Site (section 5).

"At all times in normal operation, one LPM has the distinguished role of
being the crash coordinator site, CCS. ... The CCS becomes active only
when a failure is detected."  The driving search strategy is the user's
``.recovery`` file: hosts in decreasing priority, assumed to exist on
every machine the user frequents.

The state machine per LPM:

* ``NORMAL`` — nothing wrong, or reconnected after recovery.
* ``SEARCHING`` — a failure was detected; the LPM walks the recovery
  list trying to reach (or become) a CCS.
* ``ACTING_CCS`` — this LPM serves as CCS; if it is *not* the top of the
  recovery list it is a stand-in that probes higher-priority hosts "at a
  low frequency" and relinquishes when one comes up (the network
  partition rule).
* ``ISOLATED`` — no recovery host reachable; the time-to-die interval is
  armed; periodic retries continue, and any authenticated contact
  resumes normal operation.
"""

from __future__ import annotations

from enum import Enum
from typing import List, Optional

from ..tracing.events import TraceEventType
from ..unixsim.nameserver import NAME_SERVICE
from .messages import Message, MsgKind

#: Bound on consecutive name-server reassignment attempts per search.
MAX_NS_ATTEMPTS = 5


class RecoveryState(Enum):
    NORMAL = "normal"
    SEARCHING = "searching"
    ACTING_CCS = "acting_ccs"
    ISOLATED = "isolated"


class RecoveryManager:
    """Failure handling for one LPM."""

    def __init__(self, lpm) -> None:
        self.lpm = lpm
        self.state = RecoveryState.NORMAL
        self._die_timer = None
        self._retry_timer = None
        self._probe_timer = None
        self.failures_seen = 0
        self.searches = 0

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @property
    def recovery_list(self) -> List[str]:
        return self.lpm.host.fs.read_recovery_file(self.lpm.user)

    @property
    def uses_name_server(self) -> bool:
        return self.lpm.config.ccs_source == "name_server"

    def _trace(self, event_type: TraceEventType, **details) -> None:
        self.lpm._trace(event_type, **details)

    def is_ccs(self) -> bool:
        return self.lpm.ccs_host == self.lpm.name

    def _is_top_of_list(self) -> bool:
        rlist = self.recovery_list
        return bool(rlist) and rlist[0] == self.lpm.name

    # ------------------------------------------------------------------
    # Failure detection
    # ------------------------------------------------------------------

    def on_connection_lost(self, peer: str, reason: str) -> None:
        """A sibling channel broke abnormally."""
        if not self.lpm.is_running():
            return
        self.failures_seen += 1
        self._trace(TraceEventType.FAILURE_DETECTED, peer=peer,
                    reason=reason)
        if self.is_ccs():
            return  # the coordinator itself just notes the loss
        if peer == self.lpm.ccs_host:
            self._start_search()
        else:
            self._report_to_ccs(lost=peer)

    def _report_to_ccs(self, lost: Optional[str] = None) -> None:
        """'The crash of a host (or a LPM) in the network results in
        LPMs trying to establish connections with the (known) CCS.'"""
        ccs = self.lpm.ccs_host

        def connected(link) -> None:
            if not self.lpm.is_running():
                return
            if link is None:
                self._start_search()
                return
            self.lpm.send_request(
                ccs, MsgKind.CCS_REPORT,
                {"lost": lost, "reporter": self.lpm.name},
                self._on_ccs_ack)

        self.lpm.ensure_sibling(ccs).then(connected)

    def _on_ccs_ack(self, reply: Optional[Message]) -> None:
        if not self.lpm.is_running():
            return
        if reply is None:
            self._start_search()
            return
        new_ccs = reply.payload.get("ccs_host")
        if new_ccs:
            self.lpm.ccs_host = new_ccs
        self._trace(TraceEventType.CCS_CONTACTED, ccs=self.lpm.ccs_host)
        self._resume_normal()

    # ------------------------------------------------------------------
    # The search down the recovery list
    # ------------------------------------------------------------------

    def _start_search(self) -> None:
        if not self.lpm.is_running():
            return
        if self.state is RecoveryState.SEARCHING:
            return
        self.state = RecoveryState.SEARCHING
        self.searches += 1
        if self.uses_name_server:
            self._trace(TraceEventType.CCS_SEARCH,
                        via="name server")
            self._search_via_name_server(blamed=self.lpm.ccs_host,
                                         attempts=0)
            return
        self._trace(TraceEventType.CCS_SEARCH,
                    candidates=self.recovery_list)
        self._try_candidates(list(self.recovery_list))

    # ------------------------------------------------------------------
    # The section 5 name-server alternative
    # ------------------------------------------------------------------

    def _ns_call(self, op: str, extra: dict, on_reply) -> None:
        """One query to the CCS name server; ``on_reply(None)`` when the
        server is unreachable (its single-point-of-failure cost)."""
        config = self.lpm.config
        answered = []

        def established(endpoint) -> None:
            endpoint.on_message = lambda payload, ep: (
                answered.append(1), on_reply(payload), ep.close())

        payload = {"op": op, "user": self.lpm.user}
        payload.update(extra)
        self.lpm.fabric.connect(
            self.lpm.name, config.name_server_host, NAME_SERVICE,
            payload=payload,
            on_established=established,
            on_failed=lambda reason: on_reply(None),
            detect_ms=config.connection_detect_ms)

    def register_with_name_server(self) -> None:
        """Announce this LPM; a higher-priority host's return climbs
        the assignment back up."""
        if not self.uses_name_server:
            return

        def replied(payload) -> None:
            if payload and payload.get("ccs_host"):
                self.lpm.ccs_host = payload["ccs_host"]
                if self.lpm.ccs_host == self.lpm.name and \
                        self.state is RecoveryState.NORMAL:
                    self.state = RecoveryState.ACTING_CCS
                    self._trace(TraceEventType.CCS_ASSUMED,
                                stand_in=False, via="name server")

        self._ns_call("register", {"host": self.lpm.name}, replied)

    def _search_via_name_server(self, blamed: Optional[str],
                                attempts: int) -> None:
        if not self.lpm.is_running():
            return
        if attempts >= MAX_NS_ATTEMPTS:
            self._become_isolated()
            return

        def replied(payload) -> None:
            if not self.lpm.is_running():
                return
            if payload is None or not payload.get("ccs_host"):
                # The name server itself is down or knows nothing.
                self._become_isolated()
                return
            assigned = payload["ccs_host"]
            self.lpm.ccs_host = assigned
            if assigned == self.lpm.name:
                self._assume_ccs()
                return

            def connected(link) -> None:
                if not self.lpm.is_running():
                    return
                if link is None:
                    self._search_via_name_server(blamed=assigned,
                                                 attempts=attempts + 1)
                    return
                self.lpm.send_request(
                    assigned, MsgKind.CCS_REPORT,
                    {"lost": blamed, "reporter": self.lpm.name},
                    lambda reply: self._ns_report_done(reply, assigned,
                                                       attempts))

            self.lpm.ensure_sibling(assigned).then(connected)

        op = "report_down" if blamed else "query"
        self._ns_call(op, {"host": blamed} if blamed else {}, replied)

    def _ns_report_done(self, reply: Optional[Message], assigned: str,
                        attempts: int) -> None:
        if not self.lpm.is_running():
            return
        if reply is None:
            self._search_via_name_server(blamed=assigned,
                                         attempts=attempts + 1)
            return
        self._trace(TraceEventType.CCS_CONTACTED, ccs=self.lpm.ccs_host,
                    via="name server")
        self._resume_normal()

    def _try_candidates(self, remaining: List[str]) -> None:
        if not self.lpm.is_running():
            return
        if not remaining:
            self._become_isolated()
            return
        candidate = remaining[0]
        rest = remaining[1:]
        if candidate == self.lpm.name:
            self._assume_ccs()
            return

        def connected(link) -> None:
            if not self.lpm.is_running():
                return
            if link is None:
                self._try_candidates(rest)
                return
            self.lpm.ccs_host = candidate
            self.lpm.send_request(
                candidate, MsgKind.CCS_REPORT,
                {"lost": None, "reporter": self.lpm.name},
                lambda reply: self._search_report_done(reply, rest))

        self.lpm.ensure_sibling(candidate).then(connected)

    def _search_report_done(self, reply: Optional[Message],
                            rest: List[str]) -> None:
        if not self.lpm.is_running():
            return
        if reply is None:
            self._try_candidates(rest)
            return
        new_ccs = reply.payload.get("ccs_host")
        if new_ccs:
            self.lpm.ccs_host = new_ccs
        self._trace(TraceEventType.CCS_CONTACTED, ccs=self.lpm.ccs_host)
        self._resume_normal()

    def _assume_ccs(self) -> None:
        """This LPM becomes the (possibly stand-in) coordinator."""
        self.lpm.ccs_host = self.lpm.name
        # Under the name server, every assumption keeps probing (a
        # re-query notices when the administrator's assignment climbs
        # back); under .recovery files only a non-top host stands in.
        stand_in = True if self.uses_name_server \
            else not self._is_top_of_list()
        self.state = RecoveryState.ACTING_CCS
        self._cancel_die_timer()
        self._cancel_retry_timer()
        self._trace(TraceEventType.CCS_ASSUMED, stand_in=stand_in)
        if stand_in:
            self._arm_probe_timer()

    # ------------------------------------------------------------------
    # Stand-in CCS probing (the partition rule)
    # ------------------------------------------------------------------

    def _arm_probe_timer(self) -> None:
        self._cancel_probe_timer()
        self._probe_timer = self.lpm.sim.schedule(
            self.lpm.config.ccs_probe_interval_ms, self._probe_higher,
            owner=self.lpm.name,
            label="ccs probe %s" % (self.lpm.name,))

    def _probe_higher(self) -> None:
        """'Those new CCSs that are not at the top of the list keep
        probing, at a low frequency, the hosts higher on the list.
        Whenever such host comes up, they connect to it.'"""
        self._probe_timer = None
        if not self.lpm.is_running() or \
                self.state is not RecoveryState.ACTING_CCS:
            return
        if self.uses_name_server:
            self._probe_name_server()
            return
        higher: List[str] = []
        for host in self.recovery_list:
            if host == self.lpm.name:
                break
            higher.append(host)
        if not higher:
            return
        self._trace(TraceEventType.CCS_PROBE, targets=higher)
        self._probe_candidates(higher)

    def _probe_name_server(self) -> None:
        """The name-server flavour of the low-frequency probe: re-query
        the assignment and relinquish if it moved off us."""
        def replied(payload) -> None:
            if not self.lpm.is_running() or \
                    self.state is not RecoveryState.ACTING_CCS:
                return
            if payload and payload.get("ccs_host") and \
                    payload["ccs_host"] != self.lpm.name:
                self._relinquish_to(payload["ccs_host"])
                return
            self._arm_probe_timer()

        self._trace(TraceEventType.CCS_PROBE, via="name server")
        self._ns_call("query", {}, replied)

    def _probe_candidates(self, remaining: List[str]) -> None:
        if not remaining or not self.lpm.is_running() or \
                self.state is not RecoveryState.ACTING_CCS:
            if self.state is RecoveryState.ACTING_CCS:
                self._arm_probe_timer()
            return
        candidate = remaining[0]
        rest = remaining[1:]

        def connected(link) -> None:
            if not self.lpm.is_running() or \
                    self.state is not RecoveryState.ACTING_CCS:
                return
            if link is None:
                self._probe_candidates(rest)
                return
            self._relinquish_to(candidate)

        self.lpm.ensure_sibling(candidate).then(connected)

    def _relinquish_to(self, new_ccs: str) -> None:
        self._trace(TraceEventType.CCS_RELINQUISHED, to=new_ccs)
        self.lpm.ccs_host = new_ccs
        self._cancel_probe_timer()
        self.state = RecoveryState.NORMAL
        # Tell the new coordinator we exist, and our siblings who the
        # coordinator now is.
        self.lpm.send_request(new_ccs, MsgKind.CCS_REPORT,
                              {"lost": None, "reporter": self.lpm.name},
                              lambda reply: None)
        notice_payload = {"new_ccs": new_ccs}
        for peer in self.lpm.authenticated_siblings():
            if peer == new_ccs:
                continue
            self.lpm.send_request(peer, MsgKind.CCS_REPORT,
                                  dict(notice_payload),
                                  lambda reply: None, use_handler=False)

    # ------------------------------------------------------------------
    # Isolation and the time-to-die interval
    # ------------------------------------------------------------------

    def _become_isolated(self) -> None:
        """'If none of these hosts is available, a time-to-die interval
        exists that tells the LPM when to exit after having terminated
        all of the user's processes in that host.'"""
        if self.state is RecoveryState.ISOLATED:
            self._arm_retry_timer()
            return
        self.state = RecoveryState.ISOLATED
        if self._die_timer is None:
            self._trace(TraceEventType.TIME_TO_DIE_ARMED,
                        interval_ms=self.lpm.config.time_to_die_ms)
            self._die_timer = self.lpm.sim.schedule(
                self.lpm.config.time_to_die_ms, self._time_to_die,
                owner=self.lpm.name,
                label="time-to-die %s" % (self.lpm.name,))
        self._arm_retry_timer()

    def _arm_retry_timer(self) -> None:
        self._cancel_retry_timer()
        self._retry_timer = self.lpm.sim.schedule(
            self.lpm.config.recovery_retry_interval_ms, self._retry,
            owner=self.lpm.name,
            label="recovery retry %s" % (self.lpm.name,))

    def _retry(self) -> None:
        """'A LPM not in contact with a CCS resumes the normal mode of
        operation if it manages to connect to the CCS at any future
        retry.'"""
        self._retry_timer = None
        if not self.lpm.is_running() or \
                self.state is not RecoveryState.ISOLATED:
            return
        self.state = RecoveryState.SEARCHING
        if self.uses_name_server:
            self._search_via_name_server(blamed=None, attempts=0)
        else:
            self._try_candidates(list(self.recovery_list))

    def _time_to_die(self) -> None:
        self._die_timer = None
        if not self.lpm.is_running():
            return
        # Still cut off (isolated, or mid-retry): the interval expired
        # without regaining any recovery host, so shut everything down.
        if self.state in (RecoveryState.NORMAL, RecoveryState.ACTING_CCS):
            return
        self._trace(TraceEventType.TIME_TO_DIE_FIRED)
        kernel = self.lpm.host.kernel
        from .lpm import INFRA_COMMANDS
        for proc in kernel.procs.alive_by_uid(self.lpm.uid):
            if proc.command in INFRA_COMMANDS:
                continue
            kernel.exit(proc.pid, status=128 + 9, term_signal=None)
        self.lpm.shutdown("time-to-die")

    def _resume_normal(self) -> None:
        was_isolated = self._die_timer is not None \
            or self.state is RecoveryState.ISOLATED
        self.state = RecoveryState.NORMAL
        self._cancel_die_timer()
        self._cancel_retry_timer()
        self._cancel_probe_timer()
        if was_isolated:
            self._trace(TraceEventType.RECOVERY_RESUMED)

    def on_contact(self, peer: str) -> None:
        """Any authenticated contact while isolated resumes operation
        ('or gets a communication request from a LPM in contact with a
        valid CCS')."""
        if self.state is RecoveryState.ISOLATED or \
                self._die_timer is not None:
            self._trace(TraceEventType.RECOVERY_RESUMED, via=peer)
            self.state = RecoveryState.NORMAL
            self._cancel_die_timer()
            self._cancel_retry_timer()

    # ------------------------------------------------------------------
    # CCS server side
    # ------------------------------------------------------------------

    def on_ccs_report(self, message: Message) -> None:
        """A sibling reports a failure (or a CCS change notice)."""
        new_ccs = message.payload.get("new_ccs")
        if new_ccs:
            # Notice: adopt the announced coordinator.
            self.lpm.ccs_host = new_ccs
            reply = message.make_reply(MsgKind.CCS_ACK, self.lpm.name,
                                       {"ok": True,
                                        "ccs_host": self.lpm.ccs_host})
            self.lpm._route_send(reply)
            return
        if not self.is_ccs() and self.state is not RecoveryState.ACTING_CCS:
            # We were addressed as CCS: serve as stand-in coordinator.
            self._assume_ccs()
        reply = message.make_reply(MsgKind.CCS_ACK, self.lpm.name,
                                   {"ok": True,
                                    "ccs_host": self.lpm.ccs_host})
        self.lpm._route_send(reply)

    def on_ccs_probe(self, message: Message) -> None:
        reply = message.make_reply(MsgKind.CCS_PROBE_ACK, self.lpm.name,
                                   {"ok": True,
                                    "ccs_host": self.lpm.ccs_host})
        self.lpm._route_send(reply)

    # ------------------------------------------------------------------
    # Timer hygiene
    # ------------------------------------------------------------------

    def _cancel_die_timer(self) -> None:
        if self._die_timer is not None:
            self.lpm.sim.cancel(self._die_timer)
            self._die_timer = None

    def _cancel_retry_timer(self) -> None:
        if self._retry_timer is not None:
            self.lpm.sim.cancel(self._retry_timer)
            self._retry_timer = None

    def _cancel_probe_timer(self) -> None:
        if self._probe_timer is not None:
            self.lpm.sim.cancel(self._probe_timer)
            self._probe_timer = None

    def cancel_timers(self) -> None:
        self._cancel_die_timer()
        self._cancel_retry_timer()
        self._cancel_probe_timer()
