"""The network fabric: the seam between the protocol stack and a backend.

The PPM protocol above this line (transport, RPC, routing, gather,
recovery, the tool client) is machine-independent administrative code —
exactly the property the paper claims for the PPM itself.  Everything
machine-*dependent* — how bytes move, how time advances, how timers
fire — is reached through one object, the **fabric**, injected at
construction (``lpm.fabric`` / ``client`` via ``world.fabric``).

Two implementations exist:

* :class:`repro.netsim.fabric.SimFabric` — the default; wraps the
  discrete-event simulator.  Time is simulated milliseconds, circuits
  are :class:`repro.netsim.stream.StreamConnection` objects, and
  ``run_until_true`` advances the event loop.  Behaviour is
  byte-identical to the pre-fabric direct imports.
* :class:`repro.realnet.fabric.AsyncioFabric` — real asyncio TCP
  sockets between OS processes.  Time is wall-clock milliseconds since
  the fabric started, circuits are framed TCP connections, and
  ``run_until_true`` drives the event loop.

The contract is duck-typed (this module documents it; nothing needs to
inherit from :class:`Fabric`), in the same style as the endpoint
contract below.  ``tools/check_layering.py`` enforces the seam: no
module in ``repro.core`` may import ``repro.netsim`` — the simulator is
reachable only through the fabric instance.

The endpoint contract
---------------------

Every connection the fabric establishes or accepts is represented by an
*endpoint* object with the shape netsim's ``StreamEndpoint`` and
``core.dgram.DatagramEndpoint`` already share:

``send(payload, nbytes=..., extra_delay_ms=...)``
    Queue one message (usually a :class:`repro.core.messages.Message`)
    to the peer.  ``nbytes`` is the charged wire size;
    ``extra_delay_ms`` models sender-side CPU occupancy (real backends
    may ignore it).
``close()``
    Tear the connection down; the peer's ``on_close`` fires.
``on_message(payload, endpoint)`` / ``on_close(reason, endpoint)``
    Assignable callbacks.
``peer_name`` / ``local_name`` / ``open`` / ``context``
    The remote host name, the local host name, liveness, and a free
    slot for protocol state.
"""

from __future__ import annotations

from typing import Callable, Optional

#: Default time to detect a broken connection (mirrors
#: ``netsim.stream.DEFAULT_DETECT_MS`` without importing it).
DEFAULT_DETECT_MS = 2_000.0


class Fabric:
    """Documented contract for a network backend.

    Subclassing is optional — the protocol stack calls these methods on
    whatever object sits at ``world.fabric``.  ``realnet`` inherits
    from this class so ``NotImplementedError`` marks any hole; the
    netsim adapter merely matches the shape, because netsim is the
    bottom layer and may not import ``repro.core``.
    """

    #: Short identifier (``"netsim"`` / ``"realnet"``), surfaced in
    #: ``perf_stats()`` and diagnostics.
    backend_name = "abstract"

    # -- clock and timers ------------------------------------------------

    @property
    def now_ms(self) -> float:
        """The backend clock, in milliseconds.  Simulated time on
        netsim; wall-clock milliseconds since start on realnet.  Span
        tracers timestamp from this."""
        raise NotImplementedError

    def schedule(self, delay_ms: float, callback: Callable, *args,
                 label: str = "", owner=None):
        """Run ``callback(*args)`` after ``delay_ms``; returns a timer
        handle for :meth:`cancel`.  ``owner`` is the shard-ownership
        stamp (netsim lockstep sharding); real backends ignore it."""
        raise NotImplementedError

    def cancel(self, handle) -> None:
        """Cancel a pending timer; cancelling a fired/None handle is a
        no-op."""
        raise NotImplementedError

    def run_until_true(self, predicate: Callable[[], bool],
                       timeout_ms: float = 600_000.0) -> bool:
        """Drive the backend until ``predicate()`` holds or the timeout
        elapses; returns whether it held.  This is how synchronous
        client calls block on replies on both backends."""
        raise NotImplementedError

    # -- observability ---------------------------------------------------

    @property
    def tracer(self):
        """The attached :class:`repro.perf.spans.SpanTracer`, or None
        when tracing is off."""
        raise NotImplementedError

    # -- connections -----------------------------------------------------

    def connect(self, src: str, dst: str, service: str, payload=None,
                setup_ms: float = 0.0,
                on_established: Optional[Callable] = None,
                on_failed: Optional[Callable] = None,
                detect_ms: float = DEFAULT_DETECT_MS):
        """Open a connection from host ``src`` to ``service`` on host
        ``dst``.

        Asynchronous on both backends: ``on_established(endpoint)``
        fires once the far side accepted (after delivering ``payload``
        to its acceptor), ``on_failed(reason)`` when the host is
        unreachable or nothing listens on the service.  ``setup_ms``
        adds authentication cost on netsim (ignored on realnet, where
        the handshake has real cost); ``detect_ms`` bounds broken-
        connection detection.
        """
        raise NotImplementedError

    # -- datagram port ---------------------------------------------------

    def datagram_bind(self, host: str, port: str,
                      handler: Callable) -> None:
        """Attach ``handler(payload, src_host)`` to the named datagram
        port on ``host``."""
        raise NotImplementedError

    def datagram_unbind(self, host: str, port: str) -> None:
        raise NotImplementedError

    def datagram_send(self, src: str, dst: str, port: str, payload,
                      nbytes: int = 256,
                      extra_delay_ms: float = 0.0) -> None:
        """Fire one unreliable datagram; silently dropped when
        undeliverable (ARQ lives above, in ``core.dgram``)."""
        raise NotImplementedError

    # -- cost accounting -------------------------------------------------

    def tool_send_delay_ms(self, host_name: str) -> float:
        """Sender-side CPU delay a tool pays per request on ``host``
        (the Table 2 tool-IPC cost under current load).  Real backends
        return 0 — the cost is real there."""
        raise NotImplementedError
