"""The Personal Process Manager (PPM) — the paper's contribution.

A PPM is "a distributed program based on a collection of user processes
which make use of specialized system daemons" (abstract).  This package
implements the Local Process Manager (LPM), the message protocol between
siblings, broadcast over the sparse on-demand topology, route caching,
the snapshot and resource-statistics tools, cross-machine process
control, crash recovery with the Crash Coordinator Site, and the
subroutine library tools link against.

Call :func:`install` on a :class:`repro.unixsim.World` to make its pmds
able to create LPMs, then use :class:`repro.core.client.PPMClient` (or
the :class:`repro.core.ppm.PersonalProcessManager` facade) as a tool.
"""

from .messages import Message, MsgKind
from .lpm import LocalProcessManager, install
from .snapshot import ProcessRecord, SnapshotForest
from .control import ControlAction
from .client import PPMClient
from .ppm import PersonalProcessManager
from .progspec import (
    build_program,
    spinner_spec,
    sleeper_spec,
    worker_spec,
    file_worker_spec,
    fork_tree_spec,
)
from .resilient import ResilientComputation, UnitSpec
from .files_tool import (
    open_files_by_process,
    render_open_files,
    render_closed_files,
    render_fd_table,
    file_usage_summary,
)

__all__ = [
    "Message",
    "MsgKind",
    "LocalProcessManager",
    "install",
    "ProcessRecord",
    "SnapshotForest",
    "ControlAction",
    "PPMClient",
    "PersonalProcessManager",
    "build_program",
    "spinner_spec",
    "sleeper_spec",
    "worker_spec",
    "file_worker_spec",
    "fork_tree_spec",
    "ResilientComputation",
    "UnitSpec",
    "open_files_by_process",
    "render_open_files",
    "render_closed_files",
    "render_fd_table",
    "file_usage_summary",
]
