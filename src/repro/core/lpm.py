"""The Local Process Manager.

"The personal process manager, PPM, is a distributed program implemented
as a collection of user-level processes called local process managers,
LPMs.  LPMs are created on demand, and are the basis of our management
and control mechanism." (section 2)

Each LPM is itself a process in the simulated kernel (plus its handler
processes, see :mod:`repro.core.dispatcher`).  Its communication
end points follow Figure 4: one *kernel* socket where the kernel
deposits event messages, one *accept* socket whose address the pmd
distributes, and per-peer sockets for sibling LPMs and local tools.

The LPM itself is a thin coordinator over four layers, one per facility
the paper describes:

* :mod:`repro.core.transport` — authenticated sibling channels, both
  the stream circuits and the section 3 datagram alternative;
* :mod:`repro.core.rpc` — request/reply with handlers, timeouts,
  retransmission, and the server-side exactly-once cache;
* :mod:`repro.core.router` — forwarding over cached source-destination
  routes, route learning and invalidation;
* :mod:`repro.core.gather` — the recursive snapshot/rstats collection
  with k-way record merging;
* :mod:`repro.core.topology` — session membership and the
  bounded-degree ``sparse`` overlay wiring;
* :mod:`repro.core.spantree` — per-source broadcast trees (prune on
  duplicate feedback, flood fallback and repair).

What remains here is what only the LPM can do: own the kernel and
accept sockets, the local process records, request execution
(control/create/locate), the time-to-live, and shutdown.  The layering
is one-directional — layers call back into the LPM's injected surface
(clock, CPU booking, trace hook, sibling dispatch), never into each
other's internals — and is enforced by ``tools/check_layering.py``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import ConnectionClosedError, ReproError
from ..ids import GlobalPid
from ..latency import load_factor
from ..perf import PERF
from ..tracing.events import TraceEventType
from ..unixsim.process import ProcState, trace_flags_from_names
from ..util import Deferred
from .broadcast import BroadcastEngine
from .control import ControlAction, apply_action
from .dispatcher import HandlerPool
from .gather import GatherEngine
from .messages import Message, MsgKind
from .processtable import INFRA_COMMANDS, ProcessTable
from .recovery import RecoveryManager
from .router import MessageRouter, ack_kind_for
from .rpc import RequestChannel
from .spantree import TreeBroadcast
from .toolservice import ToolService
from .topology import TopologyManager
from .transport import SiblingTransport

__all__ = ["INFRA_COMMANDS", "LocalProcessManager", "install"]


class LocalProcessManager:
    """One user's process manager on one host."""

    def __init__(self, host, user: str, token: str) -> None:
        self.host = host
        self.world = host.world
        self.sim = host.sim
        #: The backend seam: all connection establishment and datagram
        #: traffic goes through here (see :mod:`repro.core.fabric`).
        self.fabric = host.world.fabric
        self.user = user
        self.uid = host.uid_of(user)
        self.token = token
        self.config = self.world.config
        self.cost = self.world.cost_model
        self.alive = True

        # The LPM is a user-level process of its owner.
        self.proc = host.kernel.spawn(self.uid, "lpm",
                                      state=ProcState.SLEEPING)
        self.table = ProcessTable(self)
        # Figure 4's end points: the accept socket...
        self.accept_service = "lpm:%s:%s" % (user, token[:8])
        host.node.listen(self.accept_service, self._accept)
        # ...and the kernel socket.
        host.kernel.register_lpm(self.uid, self.table.on_kernel_message)

        #: Session secret for signing broadcast stamps; merged on HELLO.
        self.secret = "%016x" % self.sim.rng.getrandbits(64)
        recovery_list = host.fs.read_recovery_file(user)
        #: The crash coordinator site, "established by default by the
        #: system when the user first invokes the mechanism" (section 5).
        self.ccs_host = recovery_list[0] if recovery_list else host.name

        self.pool = HandlerPool(self)
        self.broadcast = BroadcastEngine(
            host.name, self.config.broadcast_dedup_window_ms,
            lambda: self.sim.now_ms, lambda: self.secret)
        # The layers (see the module docstring) plus tool serving.
        self.transport = SiblingTransport(self)
        self.topology = TopologyManager(self)
        self.treecast = TreeBroadcast(self)
        self.router = MessageRouter(self)
        self.rpc = RequestChannel(self)
        self.gather = GatherEngine(self)
        self.tool_service = ToolService(self)
        self.recovery = RecoveryManager(self)

        self.tools: List = []
        self._cpu_free_ms = 0.0
        self._ttl_timer = None
        self.trace_flags = trace_flags_from_names(
            self.config.default_trace_flags)

        self._trace(TraceEventType.LPM_CREATED)
        # Under the section 5 name-server alternative, announce ourselves
        # and adopt the administrator's coordinator assignment.
        self.recovery.register_with_name_server()
        self._arm_ttl()

    # ==================================================================
    # Identity helpers
    # ==================================================================

    @property
    def name(self) -> str:
        return self.host.name

    def gpid_of(self, pid: int) -> GlobalPid:
        return GlobalPid(self.name, pid)

    def _trace(self, event_type: TraceEventType, gpid=None, **details):
        self.world.recorder.record(event_type, host=self.name,
                                   user=self.user, gpid=gpid, **details)

    def _cpu(self, base_ms: float) -> float:
        """Load- and class-scaled CPU cost on this host."""
        return base_ms * load_factor(self.host.host_class,
                                     self.host.load_average())

    def _cpu_occupy(self, base_ms: float) -> float:
        """Book serialised CPU time on this LPM.

        The LPM's dispatcher is one process on one CPU: two message
        sends (or merges) issued at the same instant cannot overlap.
        Returns the delay from now until the booked work completes
        (queueing plus the load-scaled cost)."""
        cost = self._cpu(base_ms)
        start = max(self.sim.now_ms, self._cpu_free_ms)
        self._cpu_free_ms = start + cost
        return (start - self.sim.now_ms) + cost

    def is_running(self) -> bool:
        return self.alive and self.proc.alive and self.host.up

    def describe_endpoints(self) -> dict:
        """Figure 4 data: the LPM's communication end points."""
        return {
            "user": self.user,
            "host": self.name,
            "kernel_socket": "kernel(uid=%d)" % (self.uid,),
            "accept_socket": self.accept_service,
            "sibling_sockets": self.authenticated_siblings(),
            "tool_sockets": ["tool#%d" % i
                             for i, _ in enumerate(self.tools, start=1)],
        }

    # ==================================================================
    # Layer facades (the stable surface the layers, recovery, tests,
    # and benchmarks address; each is a one-line delegation)
    # ==================================================================

    @property
    def siblings(self) -> Dict:
        return self.transport.links

    @property
    def routes(self):
        return self.router.cache

    @property
    def dgram(self):
        return self.transport.dgram

    @property
    def records(self) -> Dict:
        return self.table.records

    @property
    def _pending(self) -> Dict:
        return self.rpc.pending

    @property
    def _session_established(self) -> bool:
        return self.transport.session_established

    def authenticated_siblings(self) -> List[str]:
        return self.transport.authenticated()

    def ensure_sibling(self, peer: str) -> Deferred:
        return self.transport.ensure_sibling(peer)

    def _send_on_link(self, link, message: Message,
                      forwarding: bool = False) -> None:
        self.transport.send_on_link(link, message, forwarding=forwarding)

    def _next_req_id(self) -> int:
        return self.rpc.next_req_id()

    def send_request(self, dest: str, kind: MsgKind, payload: dict,
                     on_reply: Callable[[Optional[Message]], None],
                     timeout_ms: Optional[float] = None,
                     route: Optional[List[str]] = None,
                     broadcast=None, use_handler: bool = True,
                     trace_parent=None) -> None:
        self.rpc.send_request(dest, kind, payload, on_reply,
                              timeout_ms=timeout_ms, route=route,
                              broadcast=broadcast, use_handler=use_handler,
                              trace_parent=trace_parent)

    def _route_send(self, message: Message) -> None:
        self.router.route_send(message)

    @staticmethod
    def _ack_kind_for(kind: MsgKind) -> MsgKind:
        return ack_kind_for(kind)

    def start_gather(self, what: str,
                     reply_fn: Callable[[dict], None],
                     visited: Optional[List[str]] = None,
                     broadcast=None, timeout_ms: Optional[float] = None
                     ) -> None:
        self.gather.start(what, reply_fn, visited=visited,
                          broadcast=broadcast, timeout_ms=timeout_ms)

    def create_local_process(self, command: str, args=(), program_spec=None,
                             parent: Optional[GlobalPid] = None,
                             foreground: bool = True):
        return self.table.create_local_process(
            command, args, program_spec, parent=parent,
            foreground=foreground)

    def adopt_process(self, pid: int) -> List[int]:
        return self.table.adopt_process(pid)

    def refresh_records(self) -> None:
        self.table.refresh_records()

    def local_records(self, what: str = "snapshot") -> List[dict]:
        return self.table.local_records(what)

    # ==================================================================
    # Accept socket: siblings and tools connect here
    # ==================================================================

    def _accept(self, endpoint, payload) -> None:
        if not self.is_running() or not isinstance(payload, dict):
            endpoint.close()
            return
        role = payload.get("role")
        if role == "tool":
            self._accept_tool(endpoint, payload)
        elif role == "sibling":
            self.transport.accept_sibling(endpoint, payload)
        else:
            endpoint.close()

    def _accept_tool(self, endpoint, payload) -> None:
        # Tools are local, same-user programs (shell built-ins, the
        # subroutine library): reject anything else.
        if payload.get("user") != self.user or \
                payload.get("host", self.name) != self.name:
            endpoint.close()
            return
        self.tools.append(endpoint)
        endpoint.on_message = self.tool_service.on_message
        endpoint.on_close = self._tool_on_close
        self._trace(TraceEventType.CONN_OPEN, kind="tool")

    def _tool_on_close(self, reason: str, endpoint) -> None:
        if endpoint in self.tools:
            self.tools.remove(endpoint)
        self._arm_ttl()

    # ==================================================================
    # Sibling message reception and dispatch
    # ==================================================================

    def _sibling_on_message(self, message: Message, endpoint) -> None:
        if not self.is_running():
            return
        if not isinstance(message, Message):
            return  # garbage on the channel is dropped, not fatal
        # Routed-through traffic is relayed at the dispatcher with only
        # forwarding cost, no handler (hence Table 2's cheap extra hop).
        if message.final_dest is not None and message.final_dest != self.name:
            self.router.forward(message, endpoint.peer_name)
            return
        delay = self._cpu_occupy(self.cost.sibling_recv_ms)
        self.sim.schedule(delay, self._handle_sibling, message, endpoint,
                          owner=self.name,
                          label="lpm recv %s" % (message.kind.value,))

    def _handle_sibling(self, message: Message, endpoint) -> None:
        if not self.is_running():
            return
        peer = endpoint.peer_name
        if message.is_reply:
            self.rpc.handle_reply(message)
            return
        kind = message.kind
        if kind is MsgKind.HELLO_ACK:
            self.transport.handle_hello_ack(message, endpoint)
        elif kind is MsgKind.GATHER:
            self.gather.handle_gather(message, peer)
        elif kind is MsgKind.CONTROL:
            self._handle_control(message)
        elif kind is MsgKind.CREATE:
            self._handle_create(message)
        elif kind is MsgKind.LOCATE:
            self._handle_locate(message, peer)
        elif kind is MsgKind.TOPO_GOSSIP:
            self.topology.on_gossip(message)
        elif kind is MsgKind.TREE_PRUNE:
            self.treecast.on_prune(message, peer)
        elif kind is MsgKind.TREE_REPAIR:
            self.treecast.on_repair(message, peer)
        elif kind is MsgKind.CCS_REPORT:
            self.recovery.on_ccs_report(message)
        elif kind is MsgKind.CCS_PROBE:
            self.recovery.on_ccs_probe(message)

    # ==================================================================
    # Control and creation requests from siblings
    # ==================================================================

    def _apply_control(self, pid: int, action_name: str) -> dict:
        try:
            action = ControlAction(action_name)
        except ValueError:
            return {"ok": False, "error": "unknown action %r"
                                          % (action_name,)}
        try:
            apply_action(self.host.kernel, pid, action, self.uid)
        except ReproError as exc:
            return {"ok": False, "error": "%s: %s"
                                          % (type(exc).__name__, exc)}
        return {"ok": True, "pid": pid, "action": action.value,
                "host": self.name}

    def _handle_control(self, message: Message) -> None:
        if self.rpc.note_request_started(message):
            return
        tracer = self.sim.tracer
        span = None if tracer is None else tracer.start(
            "serve:control", host=self.name, parent=message.trace,
            cat="serve")

        def acted() -> None:
            result = self._apply_control(message.payload["pid"],
                                         message.payload["action"])
            self.rpc.note_request_done(message, result)
            reply = message.make_reply(MsgKind.CONTROL_ACK, self.name,
                                       result)
            self.router.route_send(reply)
            if span is not None:
                tracer.finish(span, ok=bool(result.get("ok")))

        # signal delivery plus the kernel's confirmation (section 6).
        self.sim.schedule(self._cpu(self.cost.signal_ms), acted,
                          owner=self.name,
                          label="control %s" % (message.payload.get(
                              "action"),))

    def _handle_create(self, message: Message) -> None:
        if self.rpc.note_request_started(message):
            return
        payload = message.payload
        tracer = self.sim.tracer
        span = None if tracer is None else tracer.start(
            "serve:create", host=self.name, parent=message.trace,
            cat="serve")

        def created() -> None:
            parent = payload.get("parent")
            parent_gpid = GlobalPid(parent[0], parent[1]) if parent else None
            try:
                proc = self.create_local_process(
                    payload["command"], tuple(payload.get("args", ())),
                    payload.get("program"), parent=parent_gpid,
                    foreground=payload.get("foreground", True))
            except ReproError as exc:
                result = {"ok": False, "error": str(exc)}
            else:
                result = {"ok": True, "host": self.name, "pid": proc.pid}
            self.rpc.note_request_done(message, result)
            reply = message.make_reply(MsgKind.CREATE_ACK, self.name,
                                       result)
            self.router.route_send(reply)
            if span is not None:
                tracer.finish(span, ok=bool(result.get("ok")))

        # The LPM is the ready process-creation server: a cheap fork.
        self.sim.schedule(self._cpu(self.cost.server_fork_ms), created,
                          owner=self.name,
                          label="create %s" % (payload.get("command"),))

    def _handle_locate(self, message: Message, from_host: str) -> None:
        tracer = self.sim.tracer
        if message.broadcast is None:
            # A cache-first unicast probe addressed to this host (the
            # sparse policy's fast path): answer found / not-found
            # directly; no flood, no dedup state.
            target = message.payload["pid"]
            found = message.payload["host"] == self.name and \
                target in self.records
            payload = {"ok": found, "host": self.name, "pid": target}
            if found:
                payload["state"] = self.records[target].state
            self.router.route_send(message.make_reply(
                MsgKind.LOCATE_ACK, self.name, payload))
            return
        if not self.broadcast.should_accept(message.broadcast,
                                            hops=len(message.route)):
            if tracer is not None:
                tracer.instant("dedup:drop", host=self.name,
                               parent=message.trace, cat="broadcast",
                               origin=message.origin)
            self._trace(TraceEventType.BROADCAST_DUPLICATE,
                        origin=message.origin)
            # Duplicate-drop feedback: this edge is not a tree edge.
            self.treecast.on_duplicate(message, from_host)
            return
        if tracer is not None:
            tracer.instant("dedup:accept", host=self.name,
                           parent=message.trace, cat="broadcast",
                           origin=message.origin)
        target = message.payload["pid"]
        target_host = message.payload["host"]
        if target_host == self.name and target in self.records:
            # The flood stops here; leave a leaf tree entry so repeat
            # tree broadcasts don't mistake this host for severed state.
            self.treecast.on_found(message, from_host)
            reply = message.make_reply(
                MsgKind.LOCATE_ACK, self.name,
                {"ok": True, "host": self.name, "pid": target,
                 "state": self.records[target].state})
            self.router.route_send(reply)
            return
        # Flood onward (graph covering), extending the recorded route.
        # Loop suppression is the signed-timestamp seen-set alone, as in
        # the paper; the route is for the reply, not a visited list.
        # Under the sparse policy, a built tree narrows the targets to
        # this host's unpruned children (see repro.core.spantree).
        for peer in self.treecast.forward_targets(message, from_host):
            onward = Message(kind=MsgKind.LOCATE, req_id=message.req_id,
                             origin=message.origin, user=message.user,
                             payload=dict(message.payload),
                             route=message.route + [peer],
                             broadcast=message.broadcast,
                             trace=message.trace)
            link = self.siblings[peer]
            try:
                self.transport.send_on_link(link, onward, forwarding=True)
                self.broadcast.forwards += 1
                self._trace(TraceEventType.BROADCAST_FORWARDED,
                            origin=message.origin)
            except ConnectionClosedError:
                continue

    # ==================================================================
    # Locate by broadcast
    # ==================================================================

    def locate(self, host: str, pid: int,
               on_result: Callable[[Optional[Message]], None],
               timeout_ms: float = 5_000.0, trace_parent=None) -> None:
        """Find process ``<host, pid>`` on the overlay.

        Under the ``sparse`` policy the caches are consulted first: a
        fresh negative-cache entry answers None locally, and a cached
        (or direct) route to the owner host is probed with a unicast
        LOCATE.  Only the named host can ever answer a LOCATE, so its
        probe reply — found or not — is authoritative; only a stale or
        unanswerable route falls back to the broadcast flood.  Other
        policies broadcast immediately."""
        if self.config.topology_policy == "sparse":
            if self.router.locate_miss_fresh(host, pid):
                PERF.locate_cache_hits += 1
                self.sim.schedule(0.0, on_result, None, owner=self.name,
                                  label="locate negative-cache")
                return
            route = self.router.outbound_route(host)
            if route is not None:
                self._locate_probe(host, pid, route, on_result,
                                   timeout_ms, trace_parent)
                return
        self._locate_flood(host, pid, on_result, timeout_ms,
                           trace_parent)

    def _locate_probe(self, host: str, pid: int, route: List[str],
                      on_result, timeout_ms: float,
                      trace_parent) -> None:
        """Unicast LOCATE along a cached route; flood on failure."""
        def on_probe(reply: Optional[Message]) -> None:
            if reply is not None and reply.payload.get("ok"):
                PERF.locate_cache_hits += 1
                on_result(reply)
                return
            if reply is not None and reply.payload.get("host") == host:
                # The owner host itself said "not found" — flooding
                # cannot find a better answer, so cache the miss.
                PERF.locate_cache_hits += 1
                self.router.note_locate_miss(host, pid)
                on_result(None)
                return
            PERF.locate_cache_stale += 1
            self.routes.forget(host)
            self._locate_flood(host, pid, on_result, timeout_ms,
                               trace_parent)

        self.send_request(host, MsgKind.LOCATE, {"host": host, "pid": pid},
                          on_probe,
                          timeout_ms=self.config.locate_probe_timeout_ms,
                          route=route, use_handler=False,
                          trace_parent=trace_parent)

    def _locate_flood(self, host: str, pid: int, on_result,
                      timeout_ms: float, trace_parent) -> None:
        """Broadcast a LOCATE over the sibling graph; the owner answers
        along the recorded route."""
        stamp = self.broadcast.stamp()
        req_id = self.rpc.next_req_id()
        resolved = Deferred()
        tracer = self.sim.tracer
        sparse = self.config.topology_policy == "sparse"
        span = None if tracer is None else tracer.start(
            "broadcast:locate", host=self.name, parent=trace_parent,
            cat="broadcast", target="%s/%s" % (host, pid))

        def on_ack(reply: Optional[Message]) -> None:
            if resolved.resolve(reply):
                if span is not None:
                    tracer.finish(
                        span, op="broadcast_settle",
                        outcome="found" if reply is not None else "timeout")
                if sparse:
                    if reply is None:
                        self.router.note_locate_miss(host, pid)
                    else:
                        self.router.locate_misses.discard((host, pid))
                on_result(reply)

        timer = self.sim.schedule(timeout_ms, on_ack, None, owner=self.name,
                                  label="locate timeout")
        self.rpc.register(req_id, on_ack, timer)
        peers, tree_mode = self.treecast.origin_targets(stamp)
        if not peers:
            self.rpc.cancel(req_id)
            on_ack(None)
            return
        self._trace(TraceEventType.BROADCAST_SENT, what="locate")
        for peer in peers:
            payload = {"host": host, "pid": pid}
            if tree_mode:
                payload["tree"] = True
            locate = Message(kind=MsgKind.LOCATE, req_id=req_id,
                             origin=self.name, user=self.user,
                             payload=payload,
                             route=[self.name, peer], broadcast=stamp,
                             trace=None if span is None else span.ctx())
            try:
                self.transport.send_on_link(self.siblings[peer], locate)
            except ConnectionClosedError:
                continue

    # ==================================================================
    # Time-to-live and shutdown
    # ==================================================================

    def _user_has_presence(self) -> bool:
        """Live user processes or attached tools keep the LPM needed."""
        if any(endpoint.open for endpoint in self.tools):
            return True
        for proc in self.host.kernel.procs.alive_by_uid(self.uid):
            if proc.command not in INFRA_COMMANDS:
                return True
        return False

    def _arm_ttl(self) -> None:
        """(Re)arm the time-to-live countdown when idle (section 3:
        "LPMs have a time-to-live period during which they are still
        present in a host even though that host may no longer contain
        processes belonging to their user")."""
        if not self.is_running():
            return
        self._cancel_ttl()
        if self._user_has_presence():
            return
        self._ttl_timer = self.sim.schedule(
            self.config.lpm_time_to_live_ms, self._ttl_expired,
            owner=self.name,
            label="lpm ttl %s@%s" % (self.user, self.name))

    def _cancel_ttl(self) -> None:
        if self._ttl_timer is not None:
            self.sim.cancel(self._ttl_timer)
            self._ttl_timer = None

    def _ttl_expired(self) -> None:
        self._ttl_timer = None
        if not self.is_running() or self._user_has_presence():
            return
        # "For the CCS, the time-to-live interval has a different
        # meaning: as long as there is any sibling LPM in the networked
        # system, time-to-live is not decremented." (section 5)
        if self.ccs_host == self.name and self.authenticated_siblings():
            self._arm_ttl()
            return
        self._trace(TraceEventType.LPM_EXPIRED)
        self.shutdown("time-to-live expired")

    def shutdown(self, reason: str) -> None:
        """Orderly exit: close channels, free the pmd record, exit."""
        if not self.alive:
            return
        self.alive = False
        self.recovery.cancel_timers()
        self.topology.shutdown()
        self._cancel_ttl()
        self.rpc.cancel_all()
        self.transport.shutdown()
        for endpoint in list(self.tools):
            if endpoint.open:
                endpoint.close()
        self.tools.clear()
        if not self.host.kernel.halted:
            self.host.kernel.unregister_lpm(self.uid)
            self.host.node.unlisten(self.accept_service)
            if self.host.pmd_daemon is not None:
                self.host.pmd_daemon.forget(self.user)
            self.pool.shutdown()
            if self.proc.alive:
                self.host.kernel.exit(self.proc.pid)
        self._trace(TraceEventType.LPM_DIED, reason=reason)


def install(world) -> None:
    """Make a world's pmds able to create real LPMs.

    Also hangs an ``lpms`` registry off the world (keyed by
    ``(host, user)``) so tests and tools can reach LPM objects directly.
    """
    def factory(host, user, token):
        lpm = LocalProcessManager(host, user, token)
        world.lpms[(host.name, user)] = lpm
        return lpm

    world.lpm_factory = factory
