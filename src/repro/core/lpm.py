"""The Local Process Manager.

"The personal process manager, PPM, is a distributed program implemented
as a collection of user-level processes called local process managers,
LPMs.  LPMs are created on demand, and are the basis of our management
and control mechanism." (section 2)

Each LPM is itself a process in the simulated kernel (plus its handler
processes, see :mod:`repro.core.dispatcher`).  Its communication
end points follow Figure 4: one *kernel* socket where the kernel
deposits event messages, one *accept* socket whose address the pmd
distributes, and per-peer sockets for sibling LPMs and local tools.

All remote conversations run over authenticated stream channels
(Figure 3); requests that must block on a remote answer occupy a handler
from the pool; broadcasts flood the sparse sibling graph with signed
timestamps; routed messages follow cached source-destination routes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import ConnectionClosedError, ReproError
from ..ids import GlobalPid
from ..netsim.latency import load_factor
from ..netsim.stream import StreamConnection
from ..perf import PERF
from ..tracing.events import TraceEventType
from ..unixsim.inetd import INETD_SERVICE, PPM_SERVICE
from ..unixsim.kernel import KernelEvent, KernelMessage
from ..unixsim.process import ProcState, trace_flags_from_names
from ..util import Deferred
from .broadcast import BroadcastEngine
from .control import ControlAction, apply_action
from .dgram import DatagramFabric
from .dispatcher import HandlerPool
from .expiry import ExpiryMap
from .messages import Message, MsgKind
from .progspec import build_program
from .recovery import RecoveryManager
from .routing import RouteCache
from .snapshot import ProcessRecord
from .wire import message_size_bytes

#: Commands that are PPM infrastructure, never part of the user's
#: computation (excluded from snapshots and TTL liveness checks).
INFRA_COMMANDS = frozenset({"lpm", "lpm-handler"})

_KERNEL_TO_TRACE = {
    KernelEvent.FORK: TraceEventType.FORK,
    KernelEvent.EXEC: TraceEventType.EXEC,
    KernelEvent.EXIT: TraceEventType.EXIT,
    KernelEvent.SIGNAL: TraceEventType.SIGNAL,
    KernelEvent.STOPPED: TraceEventType.STOPPED,
    KernelEvent.CONTINUED: TraceEventType.CONTINUED,
    KernelEvent.FILE_OPENED: TraceEventType.FILE_OPENED,
    KernelEvent.FILE_CLOSED: TraceEventType.FILE_CLOSED,
}

_STATE_NAMES = {
    ProcState.RUNNING: "running",
    ProcState.SLEEPING: "sleeping",
    ProcState.STOPPED: "stopped",
    ProcState.ZOMBIE: "exited",
    ProcState.DEAD: "exited",
}


class SiblingLink:
    """An authenticated stream channel to a sibling LPM."""

    def __init__(self, peer: str, endpoint) -> None:
        self.peer = peer
        self.endpoint = endpoint
        self.authenticated = False
        self.opened_ms = 0.0


#: Sentinel in the exactly-once cache while the first execution of a
#: request is still running (duplicates arriving meanwhile are dropped;
#: the original's reply is on its way).
_REQUEST_PENDING = object()

#: Side-effecting request kinds covered by LPM-level retransmission and
#: the server's exactly-once cache.  Broadcast-stamped kinds must never
#: be retried (the dedup seen-set would swallow the retry), and the CCS
#: kinds have their own recovery-layer retry logic.
_RETRIED_KINDS = frozenset({MsgKind.CONTROL, MsgKind.CREATE})


class _Pending:
    """Bookkeeping for one outstanding remote request."""

    def __init__(self, on_reply: Callable, timer, handler) -> None:
        self.on_reply = on_reply
        self.timer = timer
        self.handler = handler
        #: At-least-once retransmission timer (datagram transport only).
        self.retry_timer = None


class _GatherOp:
    """State of one in-progress recursive gather."""

    def __init__(self, what: str, reply_fn: Callable) -> None:
        self.what = what
        self.reply_fn = reply_fn
        self.local_records: List[dict] = []
        self.child_replies: List[dict] = []
        self.missing: List[str] = []
        self.outstanding = 0
        self.merges_pending = 0
        self.handler = None
        self.finished = False

    @property
    def complete(self) -> bool:
        return self.outstanding == 0 and self.merges_pending == 0


class LocalProcessManager:
    """One user's process manager on one host."""

    def __init__(self, host, user: str, token: str) -> None:
        self.host = host
        self.world = host.world
        self.sim = host.sim
        self.user = user
        self.uid = host.uid_of(user)
        self.token = token
        self.config = self.world.config
        self.cost = self.world.cost_model
        self.alive = True

        # The LPM is a user-level process of its owner.
        self.proc = host.kernel.spawn(self.uid, "lpm",
                                      state=ProcState.SLEEPING)
        # Figure 4's end points: the accept socket...
        self.accept_service = "lpm:%s:%s" % (user, token[:8])
        host.node.listen(self.accept_service, self._accept)
        # ...and the kernel socket.
        host.kernel.register_lpm(self.uid, self._on_kernel_message)

        #: Session secret for signing broadcast stamps; merged on HELLO.
        self.secret = "%016x" % self.sim.rng.getrandbits(64)
        recovery_list = host.fs.read_recovery_file(user)
        #: The crash coordinator site, "established by default by the
        #: system when the user first invokes the mechanism" (section 5).
        self.ccs_host = recovery_list[0] if recovery_list else host.name

        self.pool = HandlerPool(self)
        self.broadcast = BroadcastEngine(
            host.name, self.config.broadcast_dedup_window_ms,
            lambda: self.sim.now_ms, lambda: self.secret)
        #: Datagram fabric, bound only under the datagram transport
        #: (section 3's scalability alternative).
        self.dgram = DatagramFabric(self)
        if self.config.transport == "datagram":
            self.dgram.bind()
        self.routes = RouteCache(host.name)
        self.recovery = RecoveryManager(self)

        self.siblings: Dict[str, SiblingLink] = {}
        #: Set once this LPM has joined a session (first authenticated
        #: sibling); after that, HELLOs no longer overwrite the session
        #: secret or the CCS identity.
        self._session_established = False
        self._pending_siblings: Dict[str, Deferred] = {}
        self.tools: List = []
        self.records: Dict[int, ProcessRecord] = {}
        self._pending: Dict[int, _Pending] = {}
        #: Exactly-once guard for side-effecting sibling requests: maps
        #: (origin, user, req_id) to the cached outcome so an LPM-level
        #: retransmission re-sends the reply instead of re-running the
        #: side effect.  Retained well past the client's own timeout.
        self._done_requests = ExpiryMap(
            self.config.request_timeout_ms * 4, lambda: self.sim.now_ms)
        self._req_counter = 0
        self._cpu_free_ms = 0.0
        self._ttl_timer = None
        self.trace_flags = trace_flags_from_names(
            self.config.default_trace_flags)

        self._trace(TraceEventType.LPM_CREATED)
        # Under the section 5 name-server alternative, announce ourselves
        # and adopt the administrator's coordinator assignment.
        self.recovery.register_with_name_server()
        self._arm_ttl()

    # ==================================================================
    # Identity helpers
    # ==================================================================

    @property
    def name(self) -> str:
        return self.host.name

    def gpid_of(self, pid: int) -> GlobalPid:
        return GlobalPid(self.name, pid)

    def _trace(self, event_type: TraceEventType, gpid=None, **details):
        self.world.recorder.record(event_type, host=self.name,
                                   user=self.user, gpid=gpid, **details)

    def _cpu(self, base_ms: float) -> float:
        """Load- and class-scaled CPU cost on this host."""
        return base_ms * load_factor(self.host.host_class,
                                     self.host.load_average())

    def _cpu_occupy(self, base_ms: float) -> float:
        """Book serialised CPU time on this LPM.

        The LPM's dispatcher is one process on one CPU: two message
        sends (or merges) issued at the same instant cannot overlap.
        Returns the delay from now until the booked work completes
        (queueing plus the load-scaled cost)."""
        cost = self._cpu(base_ms)
        start = max(self.sim.now_ms, self._cpu_free_ms)
        self._cpu_free_ms = start + cost
        return (start - self.sim.now_ms) + cost

    def _next_req_id(self) -> int:
        self._req_counter += 1
        return self._req_counter

    def is_running(self) -> bool:
        return self.alive and self.proc.alive and self.host.up

    def authenticated_siblings(self) -> List[str]:
        return sorted(peer for peer, link in self.siblings.items()
                      if link.authenticated and link.endpoint.open)

    def describe_endpoints(self) -> dict:
        """Figure 4 data: the LPM's communication end points."""
        return {
            "user": self.user,
            "host": self.name,
            "kernel_socket": "kernel(uid=%d)" % (self.uid,),
            "accept_socket": self.accept_service,
            "sibling_sockets": self.authenticated_siblings(),
            "tool_sockets": ["tool#%d" % i
                             for i, _ in enumerate(self.tools, start=1)],
        }

    # ==================================================================
    # Accept socket: siblings and tools connect here
    # ==================================================================

    def _accept(self, endpoint, payload) -> None:
        if not self.is_running() or not isinstance(payload, dict):
            endpoint.close()
            return
        role = payload.get("role")
        if role == "tool":
            self._accept_tool(endpoint, payload)
        elif role == "sibling":
            self._accept_sibling(endpoint, payload)
        else:
            endpoint.close()

    def _accept_tool(self, endpoint, payload) -> None:
        # Tools are local, same-user programs (shell built-ins, the
        # subroutine library): reject anything else.
        if payload.get("user") != self.user or \
                payload.get("host", self.name) != self.name:
            endpoint.close()
            return
        self.tools.append(endpoint)
        endpoint.on_message = self._tool_on_message
        endpoint.on_close = self._tool_on_close
        self._trace(TraceEventType.CONN_OPEN, kind="tool")

    def _accept_sibling(self, endpoint, payload) -> None:
        # Channel authentication (section 3): the connector must present
        # the token this LPM's pmd issued, proving the introduction came
        # through the trusted name server.
        if payload.get("token") != self.token or \
                payload.get("user") != self.user:
            self._trace(TraceEventType.CONN_CLOSED, kind="sibling",
                        reason="authentication failed",
                        peer=payload.get("from_host", "?"))
            endpoint.close()
            return
        peer = payload["from_host"]
        link = SiblingLink(peer, endpoint)
        link.authenticated = True
        link.opened_ms = self.sim.now_ms
        old = self.siblings.get(peer)
        if old is not None and old.endpoint.open:
            old.endpoint.close()
        self.siblings[peer] = link
        endpoint.on_message = self._sibling_on_message
        endpoint.on_close = self._sibling_on_close
        # Join the sender's session unless we already belong to one.
        if not self._session_established:
            if payload.get("secret"):
                self.secret = payload["secret"]
            if payload.get("ccs_host"):
                self.ccs_host = payload["ccs_host"]
        self._session_established = True
        self._trace(TraceEventType.CONN_OPEN, kind="sibling", peer=peer)
        ack = Message(kind=MsgKind.HELLO_ACK, req_id=self._next_req_id(),
                      origin=self.name, user=self.user,
                      payload={"secret": self.secret,
                               "ccs_host": self.ccs_host,
                               "known": self.authenticated_siblings()})
        self._send_on_link(link, ack)
        self.recovery.on_contact(peer)
        self._apply_topology_policy(payload.get("known", []))

    # ==================================================================
    # Sibling channel management
    # ==================================================================

    def ensure_sibling(self, peer: str) -> Deferred:
        """Resolve to a :class:`SiblingLink` (or None on failure),
        creating the remote LPM through inetd/pmd when necessary.
        "The local LPM will create a remote LPM when one is required"
        (section 3)."""
        done = Deferred()
        if peer == self.name:
            done.resolve(None)
            return done
        link = self.siblings.get(peer)
        if link is not None and link.authenticated and link.endpoint.open:
            done.resolve(link)
            return done
        if peer in self._pending_siblings:
            return self._pending_siblings[peer]
        self._pending_siblings[peer] = done
        done.then(lambda _result: self._pending_siblings.pop(peer, None))

        def bootstrap_replied(payload, endpoint) -> None:
            endpoint.close()
            if not payload.get("ok"):
                done.resolve(None)
                return
            if self.config.transport == "datagram":
                self._open_sibling_datagram(peer, payload, done)
            else:
                self._open_sibling_channel(peer, payload, done)

        def bootstrap_established(endpoint) -> None:
            endpoint.on_message = bootstrap_replied
            endpoint.on_close = lambda reason, ep: done.resolve(None)

        # Figure 2 steps (1)-(4): ask the remote inetd for the user's
        # LPM accept address, creating pmd and LPM as needed.
        StreamConnection.connect(
            self.world.network, self.name, peer, INETD_SERVICE,
            payload={"service": PPM_SERVICE, "user": self.user,
                     "origin_host": self.name, "origin_user": self.user},
            on_established=bootstrap_established,
            on_failed=lambda reason: done.resolve(None),
            detect_ms=self.config.connection_detect_ms)
        return done

    def _open_sibling_channel(self, peer: str, bootstrap: dict,
                              done: Deferred) -> None:
        hello = {"role": "sibling", "user": self.user,
                 "from_host": self.name, "token": bootstrap["token"],
                 "secret": self.secret, "ccs_host": self.ccs_host,
                 "known": self.authenticated_siblings()}

        def established(endpoint) -> None:
            link = SiblingLink(peer, endpoint)
            link.opened_ms = self.sim.now_ms
            self.siblings[peer] = link
            endpoint.on_message = self._sibling_on_message
            endpoint.on_close = self._sibling_on_close
            endpoint.context = {"await_ack": done}

        StreamConnection.connect(
            self.world.network, self.name, peer,
            bootstrap["accept_service"], payload=hello,
            setup_ms=self.cost.connect_ms,
            on_established=established,
            on_failed=lambda reason: done.resolve(None),
            detect_ms=self.config.connection_detect_ms)

    def _apply_topology_policy(self, known_hosts: List[str]) -> None:
        """Under the ``full_mesh`` ablation policy, eagerly connect to
        every LPM a new sibling knows about; the paper's on-demand
        policy does nothing here ("In most operational scenarios we
        expect to have only very few of all the potential connections
        between sibling LPMs in place", section 4)."""
        if self.config.topology_policy != "full_mesh":
            return
        for host in known_hosts:
            if host != self.name and host not in self.siblings:
                self.ensure_sibling(host)

    # ------------------------------------------------------------------
    # Datagram transport (section 3's alternative)
    # ------------------------------------------------------------------

    def _open_sibling_datagram(self, peer: str, bootstrap: dict,
                               done: Deferred) -> None:
        """No circuit: introduce ourselves with the pmd token; every
        subsequent message authenticates individually."""
        def introduced(result) -> None:
            if result is None:
                done.resolve(None)

        intro = self.dgram.introduce(peer, bootstrap["token"])
        endpoint = self.dgram.endpoint_for(peer)
        endpoint.context = (endpoint.context or {})
        endpoint.context["await_link"] = done
        intro.then(introduced)

    def _register_datagram_sibling(self, peer: str, endpoint,
                                   info: dict) -> SiblingLink:
        link = SiblingLink(peer, endpoint)
        link.authenticated = True
        link.opened_ms = self.sim.now_ms
        self.siblings[peer] = link
        endpoint.on_message = self._sibling_on_message
        endpoint.on_close = self._sibling_on_close
        if not self._session_established:
            if info.get("secret"):
                self.secret = info["secret"]
            if info.get("ccs_host"):
                self.ccs_host = info["ccs_host"]
        self._session_established = True
        self._trace(TraceEventType.CONN_OPEN, kind="sibling-datagram",
                    peer=peer)
        self.recovery.on_contact(peer)
        self._apply_topology_policy(info.get("known", []))
        return link

    def on_datagram_intro(self, datagram: dict, endpoint) -> None:
        """Server side of the datagram introduction."""
        self._register_datagram_sibling(datagram["from_host"], endpoint,
                                        datagram)

    def on_datagram_intro_ack(self, datagram: dict, endpoint) -> None:
        """Client side: the peer accepted our introduction."""
        peer = datagram["from_host"]
        link = self._register_datagram_sibling(peer, endpoint, datagram)
        context = endpoint.context or {}
        waiter = context.get("await_intro")
        if waiter is not None:
            waiter.resolve(endpoint)
        link_waiter = context.get("await_link")
        if link_waiter is not None:
            link_waiter.resolve(link)

    def _sibling_on_close(self, reason: str, endpoint) -> None:
        peer = endpoint.peer_name
        link = self.siblings.get(peer)
        if link is not None and link.endpoint is endpoint:
            del self.siblings[peer]
        self._trace(TraceEventType.CONN_CLOSED, kind="sibling", peer=peer,
                    reason=reason)
        for dest in self.routes.invalidate_via(peer):
            self._trace(TraceEventType.ROUTE_LEARNED, dest=dest,
                        forgotten=True)
        if not self.is_running():
            return
        if reason != "closed":
            self.recovery.on_connection_lost(peer, reason)

    def _tool_on_close(self, reason: str, endpoint) -> None:
        if endpoint in self.tools:
            self.tools.remove(endpoint)
        self._arm_ttl()

    def _send_on_link(self, link: SiblingLink, message: Message,
                      forwarding: bool = False) -> None:
        cost = self.cost.forward_ms if forwarding else self.cost.sibling_send_ms
        nbytes = message_size_bytes(message)
        self._trace(TraceEventType.SIBLING_MESSAGE, peer=link.peer,
                    kind=message.kind.value, nbytes=nbytes,
                    forwarded=forwarding)
        link.endpoint.send(message, nbytes=nbytes,
                           extra_delay_ms=self._cpu_occupy(cost))

    # ==================================================================
    # Sibling message reception
    # ==================================================================

    def _sibling_on_message(self, message: Message, endpoint) -> None:
        if not self.is_running():
            return
        if not isinstance(message, Message):
            return  # garbage on the channel is dropped, not fatal
        # Routed-through traffic is relayed at the dispatcher with only
        # forwarding cost, no handler (hence Table 2's cheap extra hop).
        if message.final_dest is not None and message.final_dest != self.name:
            self._forward(message, endpoint.peer_name)
            return
        delay = self._cpu_occupy(self.cost.sibling_recv_ms)
        self.sim.schedule(delay, self._handle_sibling, message, endpoint,
                          label="lpm recv %s" % (message.kind.value,))

    def _forward(self, message: Message, arrived_from: str) -> None:
        route = message.route
        try:
            index = route.index(self.name)
            next_hop = route[index + 1]
        except (ValueError, IndexError):
            next_hop = None
        if next_hop is None or next_hop not in self.siblings or \
                not self.siblings[next_hop].endpoint.open:
            # Cannot relay: report failure back toward the origin.
            if not message.is_reply:
                failure = message.make_reply(
                    self._ack_kind_for(message.kind), self.name,
                    {"ok": False, "error": "no route at %s" % (self.name,)})
                failure.route = list(reversed(route[:route.index(self.name) + 1])) \
                    if self.name in route else [self.name, arrived_from]
                failure.final_dest = message.origin
                self._route_send(failure)
            return
        try:
            self._send_on_link(self.siblings[next_hop], message,
                               forwarding=True)
        except ConnectionClosedError:
            pass

    @staticmethod
    def _ack_kind_for(kind: MsgKind) -> MsgKind:
        return {
            MsgKind.CONTROL: MsgKind.CONTROL_ACK,
            MsgKind.CREATE: MsgKind.CREATE_ACK,
            MsgKind.GATHER: MsgKind.GATHER_REPLY,
            MsgKind.LOCATE: MsgKind.LOCATE_ACK,
            MsgKind.CCS_REPORT: MsgKind.CCS_ACK,
            MsgKind.CCS_PROBE: MsgKind.CCS_PROBE_ACK,
        }.get(kind, MsgKind.TOOL_REPLY)

    def _handle_sibling(self, message: Message, endpoint) -> None:
        if not self.is_running():
            return
        peer = endpoint.peer_name
        if message.is_reply:
            self._handle_reply(message)
            return
        kind = message.kind
        if kind is MsgKind.HELLO_ACK:
            self._handle_hello_ack(message, endpoint)
        elif kind is MsgKind.GATHER:
            self._handle_gather(message, peer)
        elif kind is MsgKind.CONTROL:
            self._handle_control(message)
        elif kind is MsgKind.CREATE:
            self._handle_create(message)
        elif kind is MsgKind.LOCATE:
            self._handle_locate(message, peer)
        elif kind is MsgKind.CCS_REPORT:
            self.recovery.on_ccs_report(message)
        elif kind is MsgKind.CCS_PROBE:
            self.recovery.on_ccs_probe(message)

    def _handle_hello_ack(self, message: Message, endpoint) -> None:
        peer = endpoint.peer_name
        link = self.siblings.get(peer)
        if link is None or link.endpoint is not endpoint:
            return
        link.authenticated = True
        # Adopt the established side's session when we are the newcomer.
        if not self._session_established:
            if message.payload.get("secret"):
                self.secret = message.payload["secret"]
            if message.payload.get("ccs_host"):
                self.ccs_host = message.payload["ccs_host"]
        self._session_established = True
        context = endpoint.context or {}
        waiter = context.get("await_ack")
        self._trace(TraceEventType.CONN_OPEN, kind="sibling", peer=peer)
        self.recovery.on_contact(peer)
        if waiter is not None:
            waiter.resolve(link)
        self._apply_topology_policy(message.payload.get("known", []))

    def _handle_reply(self, message: Message) -> None:
        pending = self._pending.pop(message.reply_to, None)
        if pending is None:
            return
        self.sim.cancel(pending.timer)
        self.sim.cancel(pending.retry_timer)
        self.pool.release(pending.handler)
        # Route learning from reply routes (section 4).
        if len(message.route) > 2 and \
                self.routes.learn_from_reply_route(message.route):
            self._trace(TraceEventType.ROUTE_LEARNED,
                        dest=message.route[0],
                        route=list(reversed(message.route)))
        pending.on_reply(message)

    # ==================================================================
    # Outbound requests
    # ==================================================================

    def send_request(self, dest: str, kind: MsgKind, payload: dict,
                     on_reply: Callable[[Optional[Message]], None],
                     timeout_ms: Optional[float] = None,
                     route: Optional[List[str]] = None,
                     broadcast=None, use_handler: bool = True) -> None:
        """Send one request toward ``dest``; ``on_reply`` gets the reply
        message, or None on timeout / unreachability.

        Blocking conversations occupy a handler process (section 6):
        "If responses are never received by a handler, they inform the
        dispatcher of the failure, which returns a failure message to
        the originator of the request."
        """
        if timeout_ms is None:
            timeout_ms = self.config.request_timeout_ms
        if route is None:
            if dest in self.siblings and self.siblings[dest].endpoint.open:
                route = [self.name, dest]
            else:
                cached = self.routes.route_to(dest)
                if cached is None:
                    on_reply(None)
                    return
                route = cached
        next_hop = route[1] if len(route) > 1 else dest
        link = self.siblings.get(next_hop)
        if link is None or not link.endpoint.open:
            on_reply(None)
            return

        handler, handler_cost = self.pool.acquire() if use_handler \
            else (None, 0.0)
        req_id = self._next_req_id()
        message = Message(kind=kind, req_id=req_id, origin=self.name,
                          user=self.user, payload=payload,
                          route=list(route), final_dest=dest,
                          broadcast=broadcast)

        def timed_out() -> None:
            pending = self._pending.pop(req_id, None)
            if pending is None:
                return
            self.sim.cancel(pending.retry_timer)
            self.pool.release(pending.handler)
            pending.on_reply(None)

        timer = self.sim.schedule(timeout_ms + self._cpu(handler_cost),
                                  timed_out,
                                  label="timeout %s#%d" % (kind.value,
                                                           req_id))
        self._pending[req_id] = _Pending(on_reply, timer, handler)

        def transmit() -> None:
            if req_id not in self._pending:
                return
            try:
                self._send_on_link(link, message)
            except ConnectionClosedError:
                timed_out_now = self._pending.pop(req_id, None)
                if timed_out_now is not None:
                    self.sim.cancel(timed_out_now.timer)
                    self.sim.cancel(timed_out_now.retry_timer)
                    self.pool.release(timed_out_now.handler)
                    timed_out_now.on_reply(None)

        if handler_cost:
            self.sim.schedule(self._cpu(handler_cost), transmit,
                              label="handler %s#%d" % (kind.value, req_id))
        else:
            transmit()

        # Datagrams give no delivery guarantee once the endpoint's own
        # ARQ budget is spent, so side-effecting requests carry an
        # LPM-level at-least-once retransmission; the receiving LPM's
        # exactly-once cache (see ``_note_request_started``) keeps the
        # end-to-end semantics exactly-once.  The retry period spans a
        # full endpoint ARQ window so it only fires when the transport
        # genuinely gave up (or the reply itself was lost).
        if self.config.transport == "datagram" and broadcast is None \
                and kind in _RETRIED_KINDS:
            self._arm_request_retry(req_id, next_hop, message)

    def _arm_request_retry(self, req_id: int, next_hop: str,
                           message: Message) -> None:
        pending = self._pending.get(req_id)
        if pending is None:
            return
        interval = self.config.datagram_rto_ms * \
            (self.config.datagram_max_retries + 1)
        pending.retry_timer = self.sim.schedule(
            interval, self._retry_request, req_id, next_hop, message,
            label="request retry %s#%d" % (message.kind.value, req_id))

    def _retry_request(self, req_id: int, next_hop: str,
                       message: Message) -> None:
        pending = self._pending.get(req_id)
        if pending is None:
            return
        pending.retry_timer = None
        PERF.requests_retransmitted += 1
        link = self.siblings.get(next_hop)
        if link is not None and link.endpoint.open:
            try:
                self._send_on_link(link, message)
            except ConnectionClosedError:
                pass
            self._arm_request_retry(req_id, next_hop, message)
            return

        # The endpoint died (ARQ exhaustion under loss); re-introduce
        # and resend.  A genuinely dead peer fails the introduction too,
        # and the request then dies by its ordinary timeout.
        def reconnected(relink) -> None:
            if req_id not in self._pending:
                return
            if relink is not None and relink.endpoint.open:
                try:
                    self._send_on_link(relink, message)
                except ConnectionClosedError:
                    pass
            self._arm_request_retry(req_id, next_hop, message)

        self.ensure_sibling(next_hop).then(reconnected)

    def _route_send(self, message: Message) -> None:
        """Send an already-addressed reply/notice along its route."""
        next_hop = None
        route = message.route
        if self.name in route:
            index = route.index(self.name)
            if index + 1 < len(route):
                next_hop = route[index + 1]
        if next_hop is None:
            next_hop = message.final_dest
        link = self.siblings.get(next_hop)
        if link is None or not link.endpoint.open:
            return
        try:
            self._send_on_link(link, message)
        except ConnectionClosedError:
            pass

    # ==================================================================
    # The kernel socket
    # ==================================================================

    def _on_kernel_message(self, kmsg: KernelMessage) -> None:
        if not self.is_running():
            return
        gpid = self.gpid_of(kmsg.pid)
        self._trace(TraceEventType.KERNEL_MESSAGE, gpid=gpid,
                    event=kmsg.event.value)
        trace_type = _KERNEL_TO_TRACE[kmsg.event]
        self._trace(trace_type, gpid=gpid, **dict(kmsg.details))
        record = self.records.get(kmsg.pid)
        if kmsg.event is KernelEvent.FORK:
            if kmsg.pid not in self.records and \
                    kmsg.command not in INFRA_COMMANDS:
                parent_gpid = self.gpid_of(kmsg.ppid) \
                    if kmsg.ppid in self.records else None
                self.records[kmsg.pid] = ProcessRecord(
                    gpid=gpid, parent=parent_gpid, user=self.user,
                    command=kmsg.command, state="running",
                    start_ms=kmsg.timestamp_ms)
        elif record is not None:
            if kmsg.event is KernelEvent.EXEC:
                record.command = kmsg.details.get("command", record.command)
            elif kmsg.event is KernelEvent.EXIT:
                record.state = "exited"
                record.end_ms = kmsg.timestamp_ms
                record.exit_status = kmsg.details.get("status")
                if "rusage" in kmsg.details:
                    record.rusage = dict(kmsg.details["rusage"])
                self._arm_ttl()
            elif kmsg.event is KernelEvent.STOPPED:
                record.state = "stopped"
            elif kmsg.event is KernelEvent.CONTINUED:
                record.state = "running"

    # ==================================================================
    # Local process management
    # ==================================================================

    def create_local_process(self, command: str, args=(), program_spec=None,
                             parent: Optional[GlobalPid] = None,
                             foreground: bool = True):
        """Create (and adopt) a user process with this LPM as creation
        server; returns the kernel process."""
        program = build_program(program_spec)
        proc = self.host.kernel.spawn(self.uid, command, tuple(args),
                                      program=program, ppid=self.proc.pid,
                                      foreground=foreground)
        self.host.kernel.adopt(self.uid, proc.pid, self.trace_flags)
        self.records[proc.pid] = ProcessRecord(
            gpid=self.gpid_of(proc.pid), parent=parent, user=self.user,
            command=command, state=_STATE_NAMES[proc.state],
            start_ms=proc.start_ms, foreground=foreground)
        self._trace(TraceEventType.PROCESS_CREATED,
                    gpid=self.gpid_of(proc.pid), command=command)
        self._cancel_ttl()
        return proc

    def adopt_process(self, pid: int) -> List[int]:
        """Adopt an existing process and its live descendants
        ("Adoption allows the LPM to keep track of a process and its
        descendants", section 4).  Returns the pids adopted."""
        kernel = self.host.kernel
        adopted = []
        stack = [pid]
        while stack:
            current = stack.pop()
            proc = kernel.adopt(self.uid, current, self.trace_flags)
            if current not in self.records:
                parent_gpid = self.gpid_of(proc.ppid) \
                    if proc.ppid in self.records else None
                self.records[current] = ProcessRecord(
                    gpid=self.gpid_of(current), parent=parent_gpid,
                    user=self.user, command=proc.command,
                    state=_STATE_NAMES[proc.state], start_ms=proc.start_ms,
                    foreground=proc.foreground)
            self._trace(TraceEventType.ADOPTED, gpid=self.gpid_of(current))
            adopted.append(current)
            stack.extend(child.pid for child in kernel.procs.children_of(
                current) if child.alive)
        self._cancel_ttl()
        return adopted

    def refresh_records(self) -> None:
        """Re-read local PCBs (the LPM has ptrace access) so a snapshot
        reflects states the delayed kernel messages have not delivered
        yet."""
        for pid, record in self.records.items():
            proc = self.host.kernel.procs.find(pid)
            if proc is None:
                if record.state != "exited":
                    record.state = "exited"
                continue
            record.state = _STATE_NAMES[proc.state]
            record.foreground = proc.foreground
            if proc.end_ms is not None:
                record.end_ms = proc.end_ms
                record.exit_status = proc.exit_status
            record.rusage = {"utime_ms": proc.rusage.utime_ms,
                             "forks": proc.rusage.forks,
                             "signals": proc.rusage.signals_received}
            # The LPM reads the descriptor table straight from the PCB
            # (ptrace access), feeding the section 7 files/fd tools.
            record.open_files = [
                {"fd": entry.fd, "path": entry.path, "mode": entry.mode,
                 "opened_ms": entry.opened_ms}
                for entry in sorted(proc.fd_table.values(),
                                    key=lambda e: e.fd)]
            record.closed_files = [
                {"path": entry.path, "mode": entry.mode,
                 "opened_ms": entry.opened_ms,
                 "closed_ms": entry.closed_ms}
                for entry in proc.closed_files]

    def local_records(self, what: str = "snapshot") -> List[dict]:
        """Serialised record list for a gather."""
        self.refresh_records()
        records = list(self.records.values())
        if what == "rstats":
            records = [r for r in records if r.exited]
        return [record.to_dict() for record in records]

    # ==================================================================
    # Gather (snapshot / rstats) — the graph-covering collection
    # ==================================================================

    def start_gather(self, what: str,
                     reply_fn: Callable[[dict], None],
                     visited: Optional[List[str]] = None,
                     broadcast=None, timeout_ms: Optional[float] = None
                     ) -> None:
        """Collect records from this LPM and, recursively, from every
        sibling not yet visited.  ``reply_fn`` receives a dict with
        ``records``, ``paths`` (host -> overlay path from here) and
        ``missing`` (hosts that could not answer)."""
        op = _GatherOp(what, reply_fn)
        if broadcast is None:
            broadcast = self.broadcast.stamp()
        visited = list(visited or [])
        if self.name not in visited:
            visited.append(self.name)
        targets = [peer for peer in self.authenticated_siblings()
                   if peer not in visited]
        visited_for_children = visited + targets

        collect_cost = self._cpu(
            self.cost.snapshot_record_ms * max(len(self.records), 1))
        if timeout_ms is None:
            timeout_ms = self.config.request_timeout_ms

        def collected() -> None:
            op.local_records = self.local_records(what)
            op.outstanding = len(targets)
            if not targets:
                self._finish_gather(op)
                return
            for peer in targets:
                self.send_request(
                    peer, MsgKind.GATHER,
                    {"what": what, "visited": visited_for_children},
                    lambda reply, peer=peer: self._gather_child_reply(
                        op, peer, reply),
                    timeout_ms=timeout_ms, broadcast=broadcast)

        self.sim.schedule(collect_cost, collected,
                          label="gather collect %s" % (self.name,))

    def _gather_child_reply(self, op: _GatherOp, peer: str,
                            reply: Optional[Message]) -> None:
        if op.finished:
            return
        op.outstanding -= 1
        if reply is None or not reply.payload.get("ok", True):
            op.missing.append(peer)
        else:
            op.merges_pending += 1
            merge_cost = self._cpu_occupy(self.cost.snapshot_merge_ms)
            self.sim.schedule(merge_cost, self._gather_merged, op,
                              reply.payload,
                              label="gather merge %s<-%s" % (self.name,
                                                             peer))
            return
        if op.complete:
            self._finish_gather(op)

    def _gather_merged(self, op: _GatherOp, payload: dict) -> None:
        if op.finished:
            return
        op.merges_pending -= 1
        op.child_replies.append(payload)
        if op.complete:
            self._finish_gather(op)

    def _finish_gather(self, op: _GatherOp) -> None:
        if op.finished:
            return
        op.finished = True
        records = list(op.local_records)
        paths = {self.name: [self.name]}
        missing = list(op.missing)
        for child in op.child_replies:
            records.extend(child.get("records", []))
            for host, path in child.get("paths", {}).items():
                paths.setdefault(host, [self.name] + list(path))
            missing.extend(child.get("missing", []))
        # The assembled paths teach this LPM routes to distant hosts
        # (section 4: replies carry the source-destination route).
        for host, path in paths.items():
            if len(path) > 2 and self.routes.learn(list(path)):
                self._trace(TraceEventType.ROUTE_LEARNED, dest=host,
                            route=list(path))
        op.reply_fn({"ok": True, "records": records, "paths": paths,
                     "missing": missing})

    def _handle_gather(self, message: Message, from_host: str) -> None:
        # Duplicate-request suppression by signed timestamp (section 4).
        if not self.broadcast.should_accept(message.broadcast,
                                            hops=len(message.route)):
            self._trace(TraceEventType.BROADCAST_DUPLICATE,
                        origin=message.origin)
            reply = message.make_reply(MsgKind.GATHER_REPLY, self.name,
                                       {"ok": True, "records": [],
                                        "paths": {}, "missing": [],
                                        "duplicate": True})
            self._route_send(reply)
            return
        self.broadcast.forwards += 1
        self._trace(TraceEventType.BROADCAST_FORWARDED,
                    origin=message.origin)

        def finished(result: dict) -> None:
            reply = message.make_reply(MsgKind.GATHER_REPLY, self.name,
                                       result)
            self._route_send(reply)

        self.start_gather(message.payload.get("what", "snapshot"),
                          finished,
                          visited=message.payload.get("visited", []),
                          broadcast=message.broadcast)

    # ==================================================================
    # Control and creation requests from siblings
    # ==================================================================

    def _note_request_started(self, message: Message) -> bool:
        """Exactly-once guard for side-effecting sibling requests.

        Returns True when this request was already executed (the cached
        reply is re-sent — the client's retransmission means the first
        reply was lost) or is still executing (the duplicate is dropped;
        the original's reply is on its way).  Otherwise records the
        request as in progress and returns False.  The payload is
        compared too, so a fresh request that happens to collide on
        (origin, req_id) — e.g. after an origin restart — is never
        answered from the cache.
        """
        key = (message.origin, message.user, message.req_id)
        cached = self._done_requests.get(key)
        if cached is not None and cached[0] is message.kind \
                and cached[1] == message.payload:
            PERF.requests_deduplicated += 1
            result = cached[2]
            if result is not _REQUEST_PENDING:
                reply = message.make_reply(
                    self._ack_kind_for(message.kind), self.name, result)
                self._route_send(reply)
            return True
        self._done_requests.add(
            key, (message.kind, message.payload, _REQUEST_PENDING))
        return False

    def _note_request_done(self, message: Message, result: dict) -> None:
        self._done_requests.add(
            (message.origin, message.user, message.req_id),
            (message.kind, message.payload, result))

    def _apply_control(self, pid: int, action_name: str) -> dict:
        try:
            action = ControlAction(action_name)
        except ValueError:
            return {"ok": False, "error": "unknown action %r"
                                          % (action_name,)}
        try:
            apply_action(self.host.kernel, pid, action, self.uid)
        except ReproError as exc:
            return {"ok": False, "error": "%s: %s"
                                          % (type(exc).__name__, exc)}
        return {"ok": True, "pid": pid, "action": action.value,
                "host": self.name}

    def _handle_control(self, message: Message) -> None:
        if self._note_request_started(message):
            return

        def acted() -> None:
            result = self._apply_control(message.payload["pid"],
                                         message.payload["action"])
            self._note_request_done(message, result)
            reply = message.make_reply(MsgKind.CONTROL_ACK, self.name,
                                       result)
            self._route_send(reply)

        # signal delivery plus the kernel's confirmation (section 6).
        self.sim.schedule(self._cpu(self.cost.signal_ms), acted,
                          label="control %s" % (message.payload.get(
                              "action"),))

    def _handle_create(self, message: Message) -> None:
        if self._note_request_started(message):
            return
        payload = message.payload

        def created() -> None:
            parent = payload.get("parent")
            parent_gpid = GlobalPid(parent[0], parent[1]) if parent else None
            try:
                proc = self.create_local_process(
                    payload["command"], tuple(payload.get("args", ())),
                    payload.get("program"), parent=parent_gpid,
                    foreground=payload.get("foreground", True))
            except ReproError as exc:
                result = {"ok": False, "error": str(exc)}
            else:
                result = {"ok": True, "host": self.name, "pid": proc.pid}
            self._note_request_done(message, result)
            reply = message.make_reply(MsgKind.CREATE_ACK, self.name,
                                       result)
            self._route_send(reply)

        # The LPM is the ready process-creation server: a cheap fork.
        self.sim.schedule(self._cpu(self.cost.server_fork_ms), created,
                          label="create %s" % (payload.get("command"),))

    def _handle_locate(self, message: Message, from_host: str) -> None:
        if not self.broadcast.should_accept(message.broadcast,
                                            hops=len(message.route)):
            self._trace(TraceEventType.BROADCAST_DUPLICATE,
                        origin=message.origin)
            return
        target = message.payload["pid"]
        target_host = message.payload["host"]
        if target_host == self.name and target in self.records:
            reply = message.make_reply(
                MsgKind.LOCATE_ACK, self.name,
                {"ok": True, "host": self.name, "pid": target,
                 "state": self.records[target].state})
            self._route_send(reply)
            return
        # Flood onward (graph covering), extending the recorded route.
        # Loop suppression is the signed-timestamp seen-set alone, as in
        # the paper; the route is for the reply, not a visited list.
        for peer in self.authenticated_siblings():
            if peer == from_host:
                continue
            onward = Message(kind=MsgKind.LOCATE, req_id=message.req_id,
                             origin=message.origin, user=message.user,
                             payload=dict(message.payload),
                             route=message.route + [peer],
                             broadcast=message.broadcast)
            link = self.siblings[peer]
            try:
                self._send_on_link(link, onward, forwarding=True)
                self.broadcast.forwards += 1
                self._trace(TraceEventType.BROADCAST_FORWARDED,
                            origin=message.origin)
            except ConnectionClosedError:
                continue

    # ==================================================================
    # Tool requests (the subroutine library's server side)
    # ==================================================================

    def _tool_on_message(self, message: Message, endpoint) -> None:
        if not self.is_running():
            return
        self._trace(TraceEventType.TOOL_REQUEST, kind=message.kind.value)
        handler = getattr(self, "_tool_" + message.kind.value, None)
        if handler is None:
            self._tool_reply(endpoint, message,
                             {"ok": False, "error": "unknown request"})
            return
        handler(message, endpoint)

    def _tool_reply(self, endpoint, request: Message, payload: dict) -> None:
        if not endpoint.open:
            return
        reply = Message(kind=MsgKind.TOOL_REPLY,
                        req_id=request.req_id, origin=self.name,
                        user=self.user, payload=payload,
                        reply_to=request.req_id)
        try:
            endpoint.send(reply, nbytes=message_size_bytes(reply),
                          extra_delay_ms=self._cpu(self.cost.tool_ipc_ms))
        except ConnectionClosedError:
            pass

    def _tool_tool_ping(self, message: Message, endpoint) -> None:
        self._tool_reply(endpoint, message,
                         {"ok": True, "host": self.name,
                          "time_ms": self.sim.now_ms})

    def _tool_tool_session_info(self, message: Message, endpoint) -> None:
        self._tool_reply(endpoint, message, {
            "ok": True,
            "host": self.name,
            "user": self.user,
            "ccs_host": self.ccs_host,
            "siblings": self.authenticated_siblings(),
            "routes": {dest: self.routes.route_to(dest)
                       for dest in self.routes.destinations()},
            "endpoints": self.describe_endpoints(),
            "recovery_state": self.recovery.state.value,
            "handler_stats": {"spawned": self.pool.spawned,
                              "reused": self.pool.reused,
                              "peak_busy": self.pool.peak_busy},
            "local_pids": sorted(self.records),
        })

    def _tool_tool_snapshot(self, message: Message, endpoint) -> None:
        self.start_gather(
            "snapshot",
            lambda result: self._tool_reply(endpoint, message, result))

    def _tool_tool_rstats(self, message: Message, endpoint) -> None:
        self.start_gather(
            "rstats",
            lambda result: self._tool_reply(endpoint, message, result))

    def _tool_tool_create(self, message: Message, endpoint) -> None:
        payload = message.payload
        target = payload.get("host", self.name)
        if target == self.name:
            def created() -> None:
                parent = payload.get("parent")
                parent_gpid = GlobalPid(parent[0], parent[1]) \
                    if parent else None
                try:
                    proc = self.create_local_process(
                        payload["command"], tuple(payload.get("args", ())),
                        payload.get("program"), parent=parent_gpid,
                        foreground=payload.get("foreground", True))
                except ReproError as exc:
                    self._tool_reply(endpoint, message,
                                     {"ok": False, "error": str(exc)})
                    return
                self._tool_reply(endpoint, message,
                                 {"ok": True, "host": self.name,
                                  "pid": proc.pid})

            cost = self._cpu(self.cost.fork_ms + self.cost.exec_ms
                             + self.cost.adopt_ms)
            self.sim.schedule(cost, created, label="local create")
            return

        def remote_ready(link) -> None:
            if link is None:
                self._tool_reply(endpoint, message,
                                 {"ok": False,
                                  "error": "cannot reach %s" % (target,)})
                return
            self.send_request(
                target, MsgKind.CREATE,
                {"command": payload["command"],
                 "args": list(payload.get("args", ())),
                 "program": payload.get("program"),
                 "parent": payload.get("parent"),
                 "foreground": payload.get("foreground", True)},
                lambda reply: self._tool_reply(
                    endpoint, message,
                    reply.payload if reply is not None else
                    {"ok": False, "error": "no response from %s"
                                           % (target,)}))

        self.ensure_sibling(target).then(remote_ready)

    def _tool_tool_control(self, message: Message, endpoint) -> None:
        payload = message.payload
        target_host = payload["host"]
        pid = payload["pid"]
        action = payload["action"]
        if target_host == self.name:
            def acted() -> None:
                self._tool_reply(endpoint, message,
                                 self._apply_control(pid, action))

            self.sim.schedule(self._cpu(self.cost.signal_ms), acted,
                              label="local control")
            return

        def send_control(allow_retry: bool = True) -> None:
            def on_reply(reply) -> None:
                if reply is None:
                    self._tool_reply(endpoint, message,
                                     {"ok": False,
                                      "error": "no response from %s"
                                               % (target_host,)})
                    return
                error = reply.payload.get("error", "")
                if not reply.payload.get("ok") and "no route" in error \
                        and allow_retry:
                    # A stale cached route: forget it and fail over to
                    # a direct channel, then retry once.
                    self.routes.forget(target_host)

                    def retried(link) -> None:
                        if link is None:
                            self._tool_reply(endpoint, message,
                                             reply.payload)
                        else:
                            send_control(allow_retry=False)

                    self.ensure_sibling(target_host).then(retried)
                    return
                self._tool_reply(endpoint, message, reply.payload)

            self.send_request(target_host, MsgKind.CONTROL,
                              {"pid": pid, "action": action}, on_reply)

        if target_host in self.siblings or \
                self.routes.route_to(target_host) is not None:
            send_control()
            return

        # Last resort: locate the process by broadcast, learn the route
        # from the reply, then deliver the action.
        def located(found: Optional[Message]) -> None:
            if found is None:
                # Try a direct channel before giving up (the process may
                # be on a host we simply never talked to).
                def fallback(link) -> None:
                    if link is None:
                        self._tool_reply(endpoint, message,
                                         {"ok": False,
                                          "error": "cannot locate %s on %s"
                                                   % (pid, target_host)})
                    else:
                        send_control()

                self.ensure_sibling(target_host).then(fallback)
                return
            send_control()

        self.locate(target_host, pid, located)

    def _tool_tool_adopt(self, message: Message, endpoint) -> None:
        payload = message.payload
        target_host = payload.get("host", self.name)
        if target_host != self.name:
            self._tool_reply(endpoint, message,
                             {"ok": False,
                              "error": "adoption is a local operation"})
            return

        def adopted() -> None:
            try:
                pids = self.adopt_process(payload["pid"])
            except ReproError as exc:
                self._tool_reply(endpoint, message,
                                 {"ok": False, "error": "%s: %s"
                                  % (type(exc).__name__, exc)})
                return
            self._tool_reply(endpoint, message,
                             {"ok": True, "adopted": pids})

        self.sim.schedule(self._cpu(self.cost.adopt_ms), adopted,
                          label="adopt")

    def _tool_tool_set_trace(self, message: Message, endpoint) -> None:
        payload = message.payload
        try:
            flags = trace_flags_from_names(payload.get("flags", []))
        except KeyError as exc:
            self._tool_reply(endpoint, message,
                             {"ok": False,
                              "error": "unknown trace flag %s" % (exc,)})
            return
        pid = payload.get("pid")
        if pid is None:
            # Session default for future adoptions on this LPM.
            self.trace_flags = flags
            self._tool_reply(endpoint, message, {"ok": True, "scope": "lpm"})
            return
        try:
            self.host.kernel.set_trace_flags(self.uid, pid, flags)
        except ReproError as exc:
            self._tool_reply(endpoint, message,
                             {"ok": False, "error": str(exc)})
            return
        self._tool_reply(endpoint, message, {"ok": True, "scope": pid})

    # ==================================================================
    # Locate by broadcast
    # ==================================================================

    def locate(self, host: str, pid: int,
               on_result: Callable[[Optional[Message]], None],
               timeout_ms: float = 5_000.0) -> None:
        """Broadcast a LOCATE over the sibling graph; the owner answers
        along the recorded route."""
        stamp = self.broadcast.stamp()
        req_id = self._next_req_id()
        resolved = Deferred()

        def on_ack(reply: Optional[Message]) -> None:
            if resolved.resolve(reply):
                on_result(reply)

        timer = self.sim.schedule(timeout_ms, on_ack, None,
                                  label="locate timeout")
        self._pending[req_id] = _Pending(on_ack, timer, None)
        peers = self.authenticated_siblings()
        if not peers:
            self._pending.pop(req_id, None)
            self.sim.cancel(timer)
            on_ack(None)
            return
        self._trace(TraceEventType.BROADCAST_SENT, what="locate")
        for peer in peers:
            locate = Message(kind=MsgKind.LOCATE, req_id=req_id,
                             origin=self.name, user=self.user,
                             payload={"host": host, "pid": pid},
                             route=[self.name, peer], broadcast=stamp)
            try:
                self._send_on_link(self.siblings[peer], locate)
            except ConnectionClosedError:
                continue

    # ==================================================================
    # Time-to-live and shutdown
    # ==================================================================

    def _user_has_presence(self) -> bool:
        """Live user processes or attached tools keep the LPM needed."""
        if any(endpoint.open for endpoint in self.tools):
            return True
        for proc in self.host.kernel.procs.alive_by_uid(self.uid):
            if proc.command not in INFRA_COMMANDS:
                return True
        return False

    def _arm_ttl(self) -> None:
        """(Re)arm the time-to-live countdown when idle (section 3:
        "LPMs have a time-to-live period during which they are still
        present in a host even though that host may no longer contain
        processes belonging to their user")."""
        if not self.is_running():
            return
        self._cancel_ttl()
        if self._user_has_presence():
            return
        self._ttl_timer = self.sim.schedule(
            self.config.lpm_time_to_live_ms, self._ttl_expired,
            label="lpm ttl %s@%s" % (self.user, self.name))

    def _cancel_ttl(self) -> None:
        if self._ttl_timer is not None:
            self.sim.cancel(self._ttl_timer)
            self._ttl_timer = None

    def _ttl_expired(self) -> None:
        self._ttl_timer = None
        if not self.is_running() or self._user_has_presence():
            return
        # "For the CCS, the time-to-live interval has a different
        # meaning: as long as there is any sibling LPM in the networked
        # system, time-to-live is not decremented." (section 5)
        if self.ccs_host == self.name and self.authenticated_siblings():
            self._arm_ttl()
            return
        self._trace(TraceEventType.LPM_EXPIRED)
        self.shutdown("time-to-live expired")

    def shutdown(self, reason: str) -> None:
        """Orderly exit: close channels, free the pmd record, exit."""
        if not self.alive:
            return
        self.alive = False
        self.recovery.cancel_timers()
        self._cancel_ttl()
        for pending in list(self._pending.values()):
            self.sim.cancel(pending.timer)
            self.sim.cancel(pending.retry_timer)
        self._pending.clear()
        for link in list(self.siblings.values()):
            if link.endpoint.open:
                link.endpoint.close()
        self.siblings.clear()
        for endpoint in list(self.tools):
            if endpoint.open:
                endpoint.close()
        self.tools.clear()
        self.dgram.unbind()
        if not self.host.kernel.halted:
            self.host.kernel.unregister_lpm(self.uid)
            self.host.node.unlisten(self.accept_service)
            if self.host.pmd_daemon is not None:
                self.host.pmd_daemon.forget(self.user)
            self.pool.shutdown()
            if self.proc.alive:
                self.host.kernel.exit(self.proc.pid)
        self._trace(TraceEventType.LPM_DIED, reason=reason)


def install(world) -> None:
    """Make a world's pmds able to create real LPMs.

    Also hangs an ``lpms`` registry off the world (keyed by
    ``(host, user)``) so tests and tools can reach LPM objects directly.
    """
    def factory(host, user, token):
        lpm = LocalProcessManager(host, user, token)
        world.lpms[(host.name, user)] = lpm
        return lpm

    world.lpm_factory = factory
