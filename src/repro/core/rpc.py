"""The request/reply layer: outstanding requests, retries, exactly-once.

Section 6: "If responses are never received by a handler, they inform
the dispatcher of the failure, which returns a failure message to the
originator of the request."  This module owns everything about one
remote conversation: req-id allocation, the pending table, timeout and
LPM-level retransmission timers, reply correlation, and the server-side
exactly-once cache that makes the datagram transport's at-least-once
retries safe for side-effecting requests.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import ConnectionClosedError
from ..perf import PERF
from .expiry import ExpiryMap
from .messages import Message, MsgKind
from .router import ack_kind_for

#: Sentinel in the exactly-once cache while the first execution of a
#: request is still running (duplicates arriving meanwhile are dropped;
#: the original's reply is on its way).
REQUEST_PENDING = object()

#: Side-effecting request kinds covered by LPM-level retransmission and
#: the server's exactly-once cache.  Broadcast-stamped kinds must never
#: be retried (the dedup seen-set would swallow the retry), and the CCS
#: kinds have their own recovery-layer retry logic.
RETRIED_KINDS = frozenset({MsgKind.CONTROL, MsgKind.CREATE})


class PendingRequest:
    """Bookkeeping for one outstanding remote request."""

    def __init__(self, on_reply: Callable, timer, handler) -> None:
        self.on_reply = on_reply
        self.timer = timer
        self.handler = handler
        #: At-least-once retransmission timer (datagram transport only).
        self.retry_timer = None


class RequestChannel:
    """One LPM's view of every conversation it is waiting on.

    The LPM injects itself for the clock, the handler pool, the
    transport (link lookup and sends), and the router (cached routes,
    reply routing); this layer contains no socket code at all.
    """

    def __init__(self, lpm) -> None:
        self.lpm = lpm
        self.pending: Dict[int, PendingRequest] = {}
        #: Exactly-once guard for side-effecting sibling requests: maps
        #: (origin, user, req_id) to the cached outcome so an LPM-level
        #: retransmission re-sends the reply instead of re-running the
        #: side effect.  Retained well past the client's own timeout.
        self._done_requests = ExpiryMap(
            lpm.config.request_timeout_ms * 4, lambda: lpm.sim.now_ms)
        self._req_counter = 0

    def next_req_id(self) -> int:
        self._req_counter += 1
        return self._req_counter

    def register(self, req_id: int, on_reply: Callable, timer,
                 handler=None) -> PendingRequest:
        """Track an externally-built conversation (e.g. a LOCATE whose
        replies come back over the broadcast's recorded route)."""
        pending = PendingRequest(on_reply, timer, handler)
        self.pending[req_id] = pending
        return pending

    def cancel(self, req_id: int) -> Optional[PendingRequest]:
        pending = self.pending.pop(req_id, None)
        if pending is not None:
            self.lpm.sim.cancel(pending.timer)
            self.lpm.sim.cancel(pending.retry_timer)
        return pending

    # ------------------------------------------------------------------
    # Outbound requests
    # ------------------------------------------------------------------

    def send_request(self, dest: str, kind: MsgKind, payload: dict,
                     on_reply: Callable[[Optional[Message]], None],
                     timeout_ms: Optional[float] = None,
                     route: Optional[List[str]] = None,
                     broadcast=None, use_handler: bool = True,
                     trace_parent=None) -> None:
        """Send one request toward ``dest``; ``on_reply`` gets the reply
        message, or None on timeout / unreachability.

        Blocking conversations occupy a handler process (section 6).
        ``trace_parent`` is an optional span context the round-trip span
        joins when span tracing is enabled.
        """
        lpm = self.lpm
        tracer = lpm.sim.tracer
        span = None
        if tracer is not None:
            # Opened before the unreachable-destination early returns so
            # every outcome (reply, timeout, no route, dead link) closes
            # the round-trip span and lands in the rpc_rtt histogram.
            span = tracer.start("rpc:%s" % kind.value, host=lpm.name,
                                parent=trace_parent, cat="rpc", dest=dest)
            inner_reply = on_reply

            def on_reply(reply, _inner=inner_reply, _span=span):
                tracer.finish(
                    _span, op="rpc_rtt",
                    outcome="ok" if reply is not None else "failed")
                _inner(reply)
        if timeout_ms is None:
            timeout_ms = lpm.config.request_timeout_ms
        if route is None:
            direct = lpm.transport.link_to(dest)
            if direct is not None:
                route = [lpm.name, dest]
            else:
                cached = lpm.router.cache.route_to(dest)
                if cached is None:
                    on_reply(None)
                    return
                route = cached
        next_hop = route[1] if len(route) > 1 else dest
        link = lpm.transport.links.get(next_hop)
        if link is None or not link.endpoint.open:
            on_reply(None)
            return

        handler, handler_cost = lpm.pool.acquire() if use_handler \
            else (None, 0.0)
        req_id = self.next_req_id()
        message = Message(kind=kind, req_id=req_id, origin=lpm.name,
                          user=lpm.user, payload=payload,
                          route=list(route), final_dest=dest,
                          broadcast=broadcast,
                          trace=None if span is None else span.ctx())

        def timed_out() -> None:
            pending = self.pending.pop(req_id, None)
            if pending is None:
                return
            lpm.sim.cancel(pending.retry_timer)
            lpm.pool.release(pending.handler)
            pending.on_reply(None)

        timer = lpm.sim.schedule(timeout_ms + lpm._cpu(handler_cost),
                                 timed_out, owner=lpm.name,
                                 label="timeout %s#%d" % (kind.value,
                                                          req_id))
        self.pending[req_id] = PendingRequest(on_reply, timer, handler)

        def transmit() -> None:
            if req_id not in self.pending:
                return
            try:
                lpm.transport.send_on_link(link, message)
            except ConnectionClosedError:
                failed = self.cancel(req_id)
                if failed is not None:
                    lpm.pool.release(failed.handler)
                    failed.on_reply(None)

        if handler_cost:
            lpm.sim.schedule(lpm._cpu(handler_cost), transmit,
                             owner=lpm.name,
                             label="handler %s#%d" % (kind.value, req_id))
        else:
            transmit()

        # Datagrams give no delivery guarantee once the endpoint's own
        # ARQ budget is spent, so side-effecting requests carry an
        # LPM-level at-least-once retransmission; the receiving LPM's
        # exactly-once cache (see ``note_request_started``) keeps the
        # end-to-end semantics exactly-once.  The retry period spans a
        # full endpoint ARQ window so it only fires when the transport
        # genuinely gave up (or the reply itself was lost).
        if lpm.config.transport == "datagram" and broadcast is None \
                and kind in RETRIED_KINDS:
            self._arm_retry(req_id, next_hop, message)

    def _arm_retry(self, req_id: int, next_hop: str,
                   message: Message) -> None:
        pending = self.pending.get(req_id)
        if pending is None:
            return
        config = self.lpm.config
        interval = config.datagram_rto_ms * \
            (config.datagram_max_retries + 1)
        pending.retry_timer = self.lpm.sim.schedule(
            interval, self._retry, req_id, next_hop, message,
            owner=self.lpm.name,
            label="request retry %s#%d" % (message.kind.value, req_id))

    def _retry(self, req_id: int, next_hop: str,
               message: Message) -> None:
        lpm = self.lpm
        pending = self.pending.get(req_id)
        if pending is None:
            return
        pending.retry_timer = None
        PERF.requests_retransmitted += 1
        link = lpm.transport.link_to(next_hop)
        if link is not None:
            try:
                lpm.transport.send_on_link(link, message)
            except ConnectionClosedError:
                pass
            self._arm_retry(req_id, next_hop, message)
            return

        # The endpoint died (ARQ exhaustion under loss); re-introduce
        # and resend.  A genuinely dead peer fails the introduction too,
        # and the request then dies by its ordinary timeout.
        def reconnected(relink) -> None:
            if req_id not in self.pending:
                return
            if relink is not None and relink.endpoint.open:
                try:
                    lpm.transport.send_on_link(relink, message)
                except ConnectionClosedError:
                    pass
            self._arm_retry(req_id, next_hop, message)

        lpm.transport.ensure_sibling(next_hop).then(reconnected)

    # ------------------------------------------------------------------
    # Reply correlation
    # ------------------------------------------------------------------

    def handle_reply(self, message: Message) -> None:
        pending = self.pending.pop(message.reply_to, None)
        if pending is None:
            return
        lpm = self.lpm
        lpm.sim.cancel(pending.timer)
        lpm.sim.cancel(pending.retry_timer)
        lpm.pool.release(pending.handler)
        # Route learning from reply routes (section 4).
        lpm.router.learn_from_reply(message)
        pending.on_reply(message)

    # ------------------------------------------------------------------
    # Server-side exactly-once cache
    # ------------------------------------------------------------------

    def note_request_started(self, message: Message) -> bool:
        """Exactly-once guard for side-effecting sibling requests.

        Returns True when this request was already executed (the cached
        reply is re-sent — the client's retransmission means the first
        reply was lost) or is still executing (the duplicate is dropped;
        the original's reply is on its way).  Otherwise records the
        request as in progress and returns False.  The payload is
        compared too, so a fresh request that happens to collide on
        (origin, req_id) — e.g. after an origin restart — is never
        answered from the cache.
        """
        key = (message.origin, message.user, message.req_id)
        cached = self._done_requests.get(key)
        if cached is not None and cached[0] is message.kind \
                and cached[1] == message.payload:
            PERF.requests_deduplicated += 1
            result = cached[2]
            if result is not REQUEST_PENDING:
                reply = message.make_reply(
                    ack_kind_for(message.kind), self.lpm.name, result)
                self.lpm.router.route_send(reply)
            return True
        self._done_requests.add(
            key, (message.kind, message.payload, REQUEST_PENDING))
        return False

    def note_request_done(self, message: Message, result: dict) -> None:
        self._done_requests.add(
            (message.origin, message.user, message.req_id),
            (message.kind, message.payload, result))

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def cancel_all(self) -> None:
        for pending in list(self.pending.values()):
            self.lpm.sim.cancel(pending.timer)
            self.lpm.sim.cancel(pending.retry_timer)
        self.pending.clear()
