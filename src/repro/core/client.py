"""The subroutine library for PPM tools.

"A library of subroutines handles most interactions with the PPM, so
that user-written programs may easily make use of PPM's capabilities."
(section 6)

A :class:`PPMClient` is such a user-written tool: it bootstraps the
local LPM through inetd/pmd (Figure 2), opens a tool stream to the
accept socket, and issues requests.  "The PPM mechanism is not
integrated with any command interpreter, and thus its services must be
obtained by one of a series of tools" (section 4) — the snapshot and
rstats calls here are exactly the two tools the paper's implementation
included.

All public methods are synchronous from the caller's point of view:
they drive the simulation until the reply arrives (or a timeout).
"""

from __future__ import annotations

from typing import List, Optional, Union

from ..errors import NoLPMError, PPMError, RequestTimeoutError
from ..ids import GlobalPid
from ..unixsim.inetd import INETD_SERVICE, PPM_SERVICE
from ..util import Deferred
from .control import ControlAction
from .messages import Message, MsgKind
from .snapshot import ProcessRecord, SnapshotForest
from .wire import message_size_bytes


class PPMClient:
    """A tool connected to the user's local LPM."""

    def __init__(self, world, user: str, host_name: str) -> None:
        self.world = world
        self.fabric = world.fabric
        self.user = user
        self.host_name = host_name
        self.endpoint = None
        self._req_counter = 0
        self._pending = {}
        self.default_timeout_ms = 120_000.0

    # ------------------------------------------------------------------
    # Connection bootstrap (Figure 2 plus the tool stream)
    # ------------------------------------------------------------------

    @property
    def connected(self) -> bool:
        return self.endpoint is not None and self.endpoint.open

    def connect(self, timeout_ms: float = 120_000.0) -> "PPMClient":
        """Obtain (creating if needed) the local LPM and open the tool
        stream.  Returns self for chaining."""
        if self.connected:
            return self
        done = Deferred()

        def bootstrap_replied(payload, bootstrap_endpoint) -> None:
            bootstrap_endpoint.close()
            if not payload.get("ok"):
                done.resolve(PPMError(payload.get("error", "bootstrap failed")))
                return
            self._open_tool_stream(payload["accept_service"], done)

        def bootstrap_established(bootstrap_endpoint) -> None:
            bootstrap_endpoint.on_message = bootstrap_replied

        self.fabric.connect(
            self.host_name, self.host_name, INETD_SERVICE,
            payload={"service": PPM_SERVICE, "user": self.user,
                     "origin_host": self.host_name,
                     "origin_user": self.user},
            on_established=bootstrap_established,
            on_failed=lambda reason: done.resolve(NoLPMError(reason)))

        if not self.fabric.run_until_true(lambda: done.resolved,
                                          timeout_ms=timeout_ms):
            raise RequestTimeoutError("LPM bootstrap on %s"
                                      % (self.host_name,))
        if isinstance(done.value, Exception):
            raise done.value
        return self

    def _open_tool_stream(self, accept_service: str, done: Deferred) -> None:
        def established(endpoint) -> None:
            self.endpoint = endpoint
            endpoint.on_message = self._on_message
            endpoint.on_close = self._on_close
            done.resolve(endpoint)

        self.fabric.connect(
            self.host_name, self.host_name, accept_service,
            payload={"role": "tool", "user": self.user,
                     "host": self.host_name},
            on_established=established,
            on_failed=lambda reason: done.resolve(NoLPMError(reason)))

    def close(self) -> None:
        if self.connected:
            self.endpoint.close()
        self.endpoint = None

    def _on_close(self, reason: str, endpoint) -> None:
        self.endpoint = None
        for deferred in list(self._pending.values()):
            deferred.resolve(None)
        self._pending.clear()

    def _on_message(self, message: Message, endpoint) -> None:
        if message.reply_to is None:
            return
        deferred = self._pending.pop(message.reply_to, None)
        if deferred is not None:
            deferred.resolve(message.payload)

    # ------------------------------------------------------------------
    # The request machinery
    # ------------------------------------------------------------------

    def call(self, kind: MsgKind, payload: Optional[dict] = None,
             timeout_ms: Optional[float] = None) -> dict:
        """Issue one request and run the simulation until its reply."""
        if not self.connected:
            self.connect()
        if timeout_ms is None:
            timeout_ms = self.default_timeout_ms
        self._req_counter += 1
        request = Message(kind=kind, req_id=self._req_counter,
                          origin=self.host_name, user=self.user,
                          payload=payload or {})
        tracer = self.fabric.tracer
        span = None
        if tracer is not None:
            span = tracer.start("tool:%s" % kind.value,
                                host=self.host_name, cat="tool")
            request.trace = span.ctx()
        deferred = Deferred()
        self._pending[request.req_id] = deferred
        self.endpoint.send(
            request, nbytes=message_size_bytes(request),
            extra_delay_ms=self.fabric.tool_send_delay_ms(self.host_name))
        if not self.fabric.run_until_true(lambda: deferred.resolved,
                                          timeout_ms=timeout_ms):
            self._pending.pop(request.req_id, None)
            if span is not None:
                tracer.finish(span, op="tool_call", outcome="timeout")
            raise RequestTimeoutError(kind.value)
        if span is not None:
            tracer.finish(span, op="tool_call",
                          outcome="lost" if deferred.value is None else "ok")
        if deferred.value is None:
            raise PPMError("connection to LPM lost during %s"
                           % (kind.value,))
        return deferred.value

    @staticmethod
    def _expect_ok(result: dict, what: str) -> dict:
        if not result.get("ok"):
            raise PPMError("%s failed: %s"
                           % (what, result.get("error", "unknown error")))
        return result

    # ------------------------------------------------------------------
    # Tool operations
    # ------------------------------------------------------------------

    def ping(self) -> dict:
        return self._expect_ok(self.call(MsgKind.TOOL_PING), "ping")

    def session_info(self) -> dict:
        return self._expect_ok(self.call(MsgKind.TOOL_SESSION_INFO),
                               "session_info")

    def create_process(self, command: str, host: Optional[str] = None,
                       args=(), program: Optional[dict] = None,
                       parent: Optional[GlobalPid] = None,
                       foreground: bool = True) -> GlobalPid:
        """Create a managed process anywhere in the network; returns its
        ``<host, pid>`` identity."""
        payload = {"command": command, "args": list(args),
                   "program": program,
                   "host": host if host is not None else self.host_name,
                   "foreground": foreground}
        if parent is not None:
            payload["parent"] = [parent.host, parent.pid]
        result = self._expect_ok(self.call(MsgKind.TOOL_CREATE, payload),
                                 "create_process(%s)" % (command,))
        return GlobalPid(result["host"], result["pid"])

    def control(self, gpid: GlobalPid,
                action: Union[ControlAction, str]) -> dict:
        """Deliver a control action to any process of the user's,
        across machine boundaries."""
        action_name = action.value if isinstance(action, ControlAction) \
            else str(action)
        return self._expect_ok(
            self.call(MsgKind.TOOL_CONTROL,
                      {"host": gpid.host, "pid": gpid.pid,
                       "action": action_name}),
            "control(%s, %s)" % (gpid, action_name))

    def stop(self, gpid: GlobalPid) -> dict:
        return self.control(gpid, ControlAction.STOP)

    def cont(self, gpid: GlobalPid) -> dict:
        return self.control(gpid, ControlAction.CONTINUE)

    def foreground(self, gpid: GlobalPid) -> dict:
        return self.control(gpid, ControlAction.FOREGROUND)

    def background(self, gpid: GlobalPid) -> dict:
        return self.control(gpid, ControlAction.BACKGROUND)

    def terminate(self, gpid: GlobalPid) -> dict:
        return self.control(gpid, ControlAction.TERMINATE)

    def kill(self, gpid: GlobalPid) -> dict:
        return self.control(gpid, ControlAction.KILL)

    def locate(self, gpid: GlobalPid) -> dict:
        """Find a process anywhere on the overlay; returns the reply
        payload (``found`` plus the owning host's answer)."""
        return self._expect_ok(
            self.call(MsgKind.TOOL_LOCATE,
                      {"host": gpid.host, "pid": gpid.pid}),
            "locate(%s)" % (gpid,))

    def snapshot(self, prune: bool = True) -> SnapshotForest:
        """The snapshot tool: the genealogical state of the user's
        distributed computation."""
        result = self._expect_ok(self.call(MsgKind.TOOL_SNAPSHOT),
                                 "snapshot")
        forest = SnapshotForest(
            taken_at_ms=self.fabric.now_ms,
            records=[ProcessRecord.from_dict(r)
                     for r in result.get("records", [])],
            missing_hosts=set(result.get("missing", [])))
        return forest.prune_exited_leaves() if prune else forest

    def rstats(self) -> List[ProcessRecord]:
        """The exited-process resource consumption statistics tool."""
        result = self._expect_ok(self.call(MsgKind.TOOL_RSTATS), "rstats")
        return [ProcessRecord.from_dict(r)
                for r in result.get("records", [])]

    def adopt(self, pid: int) -> List[int]:
        """Ask the local LPM to adopt a process and its descendants."""
        result = self._expect_ok(
            self.call(MsgKind.TOOL_ADOPT, {"pid": pid}), "adopt")
        return result["adopted"]

    def set_trace_flags(self, flags: List[str],
                        pid: Optional[int] = None) -> dict:
        """Adjust event-recording granularity, session-wide or per pid."""
        payload = {"flags": list(flags)}
        if pid is not None:
            payload["pid"] = pid
        return self._expect_ok(self.call(MsgKind.TOOL_SET_TRACE, payload),
                               "set_trace_flags")
