"""Latency model calibrated against the paper's measurements.

The paper measured three host types (VAX 11/780, VAX 11/750, SUN II) on
one Berkeley Ethernet.  Table 1 gives the kernel-to-LPM 112-byte message
delivery time as a function of the time-averaged run-queue length ``la``;
Table 2 gives process creation/control times by *topological distance* in
the LPM overlay (the physical network is a single Ethernet, so an extra
overlay hop adds only forwarding cost); Table 3 gives snapshot-gathering
times for four overlay topologies.

We reproduce those costs with two pieces:

* :func:`kernel_message_delay_ms` interpolates Table 1's anchors per host
  class, and :func:`load_factor` reuses the same anchors to scale every
  other CPU-bound cost with load, so all load sensitivity in the simulator
  comes from one calibrated source.

* :class:`CostModel` holds the per-operation constants.  They were solved
  from Table 2 (see DESIGN.md section 2): with one-way tool IPC ``T``,
  one-way sibling-message endpoint cost ``E``, local fork+exec+adopt ``F``,
  creation-server fork ``f`` and signal-plus-confirmation ``S``::

      2T + F            = 77   (create, within host)
      2T + S            = 30   (stop, within host)
      2T + 2E + S       = 199  (stop, one hop)       -> E = 84.5
      2T + 2(E + h) + S = 210  (stop, two hops)      -> h = 5.5 per extra hop
      2T + 2E + f       = 177  (remote create, section 8)

  which yields ``T = 3``, ``f = 2``, ``F = 71``, ``S = 24``, with the
  per-message endpoint cost ``E`` split into a sender share of 35 ms, a
  receiver share of 44 ms, one warm handler acquisition of 1 ms per
  blocking request, and 5 ms of wire time per overlay hop.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Tuple

from .errors import ConfigError


class HostClass(Enum):
    """CPU classes measured in the paper, plus a modern reference point."""

    VAX_780 = "VAX 11/780"
    VAX_750 = "VAX 11/750"
    SUN_2 = "SUN II"


#: Table 1 anchors: (load-band midpoint, delivery time in ms).  The paper
#: leaves the VAX 11/780 blank for the (3, 4] band; we extrapolate with the
#: slope of its last two bands.
_KERNEL_MESSAGE_ANCHORS: Dict[HostClass, List[Tuple[float, float]]] = {
    HostClass.VAX_780: [(0.5, 7.2), (1.5, 9.8), (2.5, 13.6), (3.5, 17.4)],
    HostClass.VAX_750: [(0.5, 7.2), (1.5, 9.6), (2.5, 12.8), (3.5, 18.9)],
    HostClass.SUN_2: [(0.5, 8.31), (1.5, 14.13), (2.5, 22.0), (3.5, 42.7)],
}


def _interpolate(anchors: List[Tuple[float, float]], x: float) -> float:
    """Piecewise-linear interpolation, clamped below the first anchor and
    extrapolated with the final slope above the last one."""
    if x <= anchors[0][0]:
        return anchors[0][1]
    for (x0, y0), (x1, y1) in zip(anchors, anchors[1:]):
        if x <= x1:
            return y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    (x0, y0), (x1, y1) = anchors[-2], anchors[-1]
    slope = (y1 - y0) / (x1 - x0)
    return y1 + slope * (x - x1)


def kernel_message_delay_ms(host_class: HostClass, load_average: float,
                            size_bytes: int = 112) -> float:
    """Delivery time of a kernel-to-LPM message (Table 1).

    ``load_average`` is the time-averaged run-queue length ``la``.  Sizes
    other than the measured 112 bytes scale the copy portion of the cost
    (we attribute half the base cost to per-byte copying).
    """
    if load_average < 0:
        raise ConfigError("load_average must be >= 0")
    base = _interpolate(_KERNEL_MESSAGE_ANCHORS[host_class],
                        max(load_average, 0.0))
    if size_bytes == 112:
        return base
    copy_share = 0.5
    return base * (1 - copy_share) + base * copy_share * (size_bytes / 112.0)


def load_factor(host_class: HostClass, load_average: float) -> float:
    """Multiplier applied to CPU-bound costs under load.

    Normalised so that a lightly loaded host (``la = 0.5``, the midpoint
    of Table 1's first band) has factor 1.0.  Reusing the Table 1 anchors
    means every cost in the simulator degrades with load in the same
    calibrated way the kernel-message path was measured to.
    """
    anchors = _KERNEL_MESSAGE_ANCHORS[host_class]
    light = anchors[0][1]
    return _interpolate(anchors, max(load_average, 0.0)) / light


@dataclass(frozen=True)
class CostModel:
    """Per-operation base costs (ms) at light load on a VAX 11/780.

    Each CPU-bound cost is multiplied by :func:`load_factor` for the host
    executing it.  Wire costs are load independent (one shared Ethernet).
    """

    #: One-way tool <-> LPM IPC over a local stream (``T``).
    tool_ipc_ms: float = 3.0

    #: Sender-side share of a sibling LPM message (protocol processing).
    #: A blocking request additionally pays handler acquisition
    #: (``handler_reuse_ms`` warm, ``handler_spawn_ms`` cold).
    sibling_send_ms: float = 35.0

    #: Receiver-side share of a sibling LPM message (delivery, dispatch,
    #: unmarshalling).
    sibling_recv_ms: float = 44.0

    #: Physical traversal of the Ethernet segment, per hop.
    wire_ms: float = 5.0

    #: Relay cost at an intermediate LPM dispatcher (no handler needed).
    forward_ms: float = 0.5

    #: fork+exec+adopt performed on behalf of a tool request (``F``):
    #: fork 20, exec 30, adoption bookkeeping + kernel notifications 21.
    fork_ms: float = 20.0
    exec_ms: float = 30.0
    adopt_ms: float = 21.0

    #: fork performed by an LPM acting as creation server for a remote
    #: request (``f``); the child is pre-configured, so this is cheap.
    server_fork_ms: float = 2.0

    #: Signal delivery plus the kernel's state-change confirmation the LPM
    #: waits for before acknowledging a control request (``S``).
    signal_ms: float = 24.0

    #: Serialising one process record into a snapshot reply.
    snapshot_record_ms: float = 3.4

    #: Merging one remote snapshot reply into the accumulating forest.
    snapshot_merge_ms: float = 6.0

    #: Connection establishment: TCP-like three-way handshake plus the
    #: channel authentication of section 3 (one round trip + checks).
    connect_ms: float = 120.0

    #: LPM process creation by the pmd (expensive, hence time-to-live).
    lpm_spawn_ms: float = 260.0

    #: pmd lookup / registration step.
    pmd_step_ms: float = 12.0

    #: Datagram per-message authentication overhead (section 3: a datagram
    #: scheme "would require individual authentication for each message").
    datagram_auth_ms: float = 9.0

    #: Dispatcher examining one incoming message.
    dispatch_ms: float = 1.5

    #: Creating a fresh handler process when the pool has no idle one.
    handler_spawn_ms: float = 14.0

    #: Handing a request to an existing idle handler.
    handler_reuse_ms: float = 1.0

    def sibling_one_way_ms(self, hops: int, send_factor: float = 1.0,
                           recv_factor: float = 1.0) -> float:
        """End-to-end one-way cost of a sibling message over ``hops``
        overlay hops (hops >= 1): endpoint costs once, wire per hop,
        forwarding at each intermediate LPM."""
        if hops < 1:
            raise ConfigError("hops must be >= 1")
        return (self.sibling_send_ms * send_factor
                + self.sibling_recv_ms * recv_factor
                + self.wire_ms * hops
                + self.forward_ms * (hops - 1))


#: The calibrated default model used throughout the reproduction.
DEFAULT_COST_MODEL = CostModel()
