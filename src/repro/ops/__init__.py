"""The operational surface: health checks, the doctor, ops triggers.

``repro.ops`` answers the operator's question the paper motivates —
"is my computation healthy, and if not, where?" — for both backends:

* :mod:`repro.ops.checks` — the backend-neutral check library
  (:class:`WorldView` in, :class:`DoctorReport` with named checks and
  distinct exit codes out).
* :mod:`repro.ops.doctor` — the probes (netsim world in-process,
  realnet fleet over TCP) and :func:`run_doctor`.
* :mod:`repro.ops.triggers` — prebuilt operational triggers (p99
  regression, tree-repair storm, CCS flap, dedup-cache blowup,
  retransmission storm, host down) over the paper's trigger engine.

Everything here is read-only and opt-in: probing a world never sends
protocol messages on the netsim backend, never perturbs the RNG or
event queue, and the triggers only run once installed.  See
``docs/OPERATIONS.md`` for the runbook.
"""

from .checks import (
    CHECK_ORDER,
    EXIT_CODES,
    CheckResult,
    DoctorConfig,
    DoctorReport,
    HostHealth,
    LpmHealth,
    OpsAlert,
    OrphanRecord,
    WorldView,
    run_checks,
)
from .doctor import (
    alerts_from_engine,
    load_baseline,
    probe_fleet,
    probe_world,
    run_doctor,
    write_baseline,
)
from .triggers import (
    ccs_flap_trigger,
    dedup_cache_blowup_trigger,
    host_down_trigger,
    install_ops_triggers,
    p99_regression_trigger,
    retransmission_storm_trigger,
    tree_repair_storm_trigger,
)

__all__ = [
    "CHECK_ORDER",
    "EXIT_CODES",
    "CheckResult",
    "DoctorConfig",
    "DoctorReport",
    "HostHealth",
    "LpmHealth",
    "OpsAlert",
    "OrphanRecord",
    "WorldView",
    "run_checks",
    "alerts_from_engine",
    "load_baseline",
    "probe_fleet",
    "probe_world",
    "run_doctor",
    "write_baseline",
    "ccs_flap_trigger",
    "dedup_cache_blowup_trigger",
    "host_down_trigger",
    "install_ops_triggers",
    "p99_regression_trigger",
    "retransmission_storm_trigger",
    "tree_repair_storm_trigger",
]
