"""The operational surface: health checks, the doctor, ops triggers.

``repro.ops`` answers the operator's question the paper motivates —
"is my computation healthy, and if not, where?" — for both backends:

* :mod:`repro.ops.checks` — the backend-neutral check library
  (:class:`WorldView` in, :class:`DoctorReport` with named checks and
  distinct exit codes out).
* :mod:`repro.ops.doctor` — the probes (netsim world in-process,
  realnet fleet over TCP) and :func:`run_doctor`.
* :mod:`repro.ops.triggers` — prebuilt operational triggers (p99
  regression, tree-repair storm, CCS flap, dedup-cache blowup,
  retransmission storm, host down, watch onset) over the paper's
  trigger engine.
* :mod:`repro.ops.watch` — the continuous watch loop: interval
  sweeps over either backend, onset/clear edge detection between
  consecutive sweeps, and per-sweep time-series sampling
  (:mod:`repro.perf.timeseries`).
* :mod:`repro.ops.journal` — the append-only JSONL incident journal
  the watch loop writes, and the ``repro incidents`` rendering
  (timeline + MTTR per check).

Everything here is read-only and opt-in: probing a world never sends
protocol messages on the netsim backend, never perturbs the RNG or
event queue, and the triggers only run once installed.  See
``docs/OPERATIONS.md`` for the runbook.
"""

from .checks import (
    CHECK_ORDER,
    EXIT_CODES,
    CheckResult,
    DoctorConfig,
    DoctorReport,
    HostHealth,
    LpmHealth,
    OpsAlert,
    OrphanRecord,
    WorldView,
    check_to_dict,
    offending_entities,
    report_to_dict,
    run_checks,
)
from .doctor import (
    alerts_from_engine,
    load_baseline,
    probe_fleet,
    probe_world,
    run_doctor,
    write_baseline,
)
from .journal import (
    IncidentJournal,
    incident_records,
    mttr_by_check,
    read_journal,
    render_incidents,
)
from .triggers import (
    ccs_flap_trigger,
    dedup_cache_blowup_trigger,
    host_down_trigger,
    install_ops_triggers,
    latency_rising_trigger,
    p99_regression_trigger,
    retransmission_storm_trigger,
    tree_repair_storm_trigger,
    watch_onset_trigger,
)
from .watch import (
    DEFAULT_INTERVAL_MS,
    RUNBOOK_ANCHORS,
    WatchEdge,
    Watcher,
    watch_fleet,
    watch_world,
)

__all__ = [
    "CHECK_ORDER",
    "EXIT_CODES",
    "CheckResult",
    "DoctorConfig",
    "DoctorReport",
    "HostHealth",
    "LpmHealth",
    "OpsAlert",
    "OrphanRecord",
    "WorldView",
    "check_to_dict",
    "offending_entities",
    "report_to_dict",
    "run_checks",
    "alerts_from_engine",
    "load_baseline",
    "probe_fleet",
    "probe_world",
    "run_doctor",
    "write_baseline",
    "IncidentJournal",
    "incident_records",
    "mttr_by_check",
    "read_journal",
    "render_incidents",
    "ccs_flap_trigger",
    "dedup_cache_blowup_trigger",
    "host_down_trigger",
    "install_ops_triggers",
    "latency_rising_trigger",
    "p99_regression_trigger",
    "retransmission_storm_trigger",
    "tree_repair_storm_trigger",
    "watch_onset_trigger",
    "DEFAULT_INTERVAL_MS",
    "RUNBOOK_ANCHORS",
    "WatchEdge",
    "Watcher",
    "watch_fleet",
    "watch_world",
]
