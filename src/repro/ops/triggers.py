"""Prebuilt operational triggers.

The paper's trigger machinery (:mod:`repro.tracing.triggers`) lets a
user fire arbitrary actions on history-dependent conditions; this
module ships the conditions an *operator* wants armed by default:

``ops:p99-regression``
    A latency histogram's p99 exceeded ``factor`` x its recorded
    baseline (source: ``tracer.latency_summary()``).
``ops:tree-repair-storm``
    ``PERF.tree_repairs`` grew by more than ``threshold`` since the
    trigger was armed — the broadcast trees are thrashing.
``ops:ccs-flap``
    The crash-coordinator role changed hands (``CCS_ASSUMED`` /
    ``CCS_RELINQUISHED``) ``threshold`` or more times inside
    ``window_ms`` — recovery is oscillating instead of settling.
``ops:dedup-cache-blowup``
    The broadcast dedup seen-set exceeded ``threshold`` entries —
    stamps are not expiring (retention misconfigured or a flood loop).
``ops:retransmission-storm``
    ``PERF.requests_retransmitted`` grew past ``threshold`` since
    arming — the RPC layer is fighting loss instead of making calls.
``ops:host-down``
    A ``FAILURE_DETECTED`` event was recorded (a sibling's circuit
    broke and the failure detector noticed).
``ops:watch-onset``
    The continuous watch loop (:mod:`repro.ops.watch`) recorded a
    check *onset* edge — a health check that passed last sweep fails
    now.  Edge-triggered by construction: the watch loop records one
    ``WATCH_EDGE`` event per transition, never per poll.
``ops:latency-rising``
    An operation's sampled p99 (the ``<op>_p99_ms`` ring series the
    watch loop feeds into its :class:`~repro.perf.timeseries.
    MetricsSampler`) shows a positive trend over the window —
    latency is still *within* SLO but drifting toward the cliff, the
    multi-tenant early-warning a hard p99 threshold fires too late
    for.  Requires a ``sampler``; see :func:`install_ops_triggers`.

Each firing appends an :class:`~repro.ops.checks.OpsAlert` to the
shared alert log, which ``repro doctor`` surfaces through the
``trigger-alerts`` check and ``repro stats`` prints.  The condition
triggers are ``once=True``: an alert is a latched fact for the
operator to clear, not a log line to repeat.  (``ops:watch-onset`` is
the exception — each onset is a distinct incident.)  Nothing here is
armed by default — worlds without :func:`install_ops_triggers`
schedule nothing and stay byte-identical.  Arming is idempotent per
engine: trigger names already present are left untouched.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..perf import PERF
from ..tracing.events import TraceEventType
from ..tracing.triggers import Trigger
from .checks import OpsAlert


def _alerting(name: str, alerts: List[OpsAlert],
              detail_fn: Callable[[], str]) -> Callable:
    """The default action: latch one alert on the shared log."""
    def action(event) -> None:
        PERF.ops_alerts_raised += 1
        alerts.append(OpsAlert(name=name, detail=detail_fn(),
                               time_ms=event.time_ms))
    return action


def p99_regression_trigger(summary_fn: Callable[[], Dict[str, dict]],
                           baseline_p99_ms: float,
                           alerts: List[OpsAlert],
                           op: str = "rpc_rtt",
                           factor: float = 2.0,
                           min_count: int = 5) -> Trigger:
    """Fire when ``op``'s p99 exceeds ``factor`` x the baseline."""
    state = {"p99": None}

    def predicate(event, history) -> bool:
        block = summary_fn().get(op) or {}
        if block.get("count", 0) < min_count:
            return False
        p99 = block.get("p99_ms")
        if p99 is None or p99 <= factor * baseline_p99_ms:
            return False
        state["p99"] = p99
        return True

    return Trigger(
        name="ops:p99-regression",
        action=_alerting(
            "ops:p99-regression", alerts,
            lambda: "%s p99 %.1fms > %.1fx baseline %.1fms"
            % (op, state["p99"], factor, baseline_p99_ms)),
        predicate=predicate, once=True)


def tree_repair_storm_trigger(alerts: List[OpsAlert],
                              threshold: int = 10) -> Trigger:
    """Fire when tree repairs since arming exceed ``threshold``."""
    start = PERF.tree_repairs

    def predicate(event, history) -> bool:
        return PERF.tree_repairs - start >= threshold

    return Trigger(
        name="ops:tree-repair-storm",
        action=_alerting(
            "ops:tree-repair-storm", alerts,
            lambda: "%d tree repairs since armed (threshold %d)"
            % (PERF.tree_repairs - start, threshold)),
        predicate=predicate, once=True)


def ccs_flap_trigger(alerts: List[OpsAlert],
                     window_ms: float = 60_000.0,
                     threshold: int = 3) -> Trigger:
    """Fire when the CCS role flaps ``threshold`` times in a window."""
    flap_types = (TraceEventType.CCS_ASSUMED,
                  TraceEventType.CCS_RELINQUISHED)
    state = {"count": 0}

    def predicate(event, history) -> bool:
        if event.event_type not in flap_types:
            return False
        count = sum(history.count_in_window(event.time_ms, window_ms,
                                            flap_type)
                    for flap_type in flap_types)
        state["count"] = count
        return count >= threshold

    return Trigger(
        name="ops:ccs-flap",
        action=_alerting(
            "ops:ccs-flap", alerts,
            lambda: "%d CCS role changes in %.0fms (threshold %d)"
            % (state["count"], window_ms, threshold)),
        predicate=predicate, once=True)


def dedup_cache_blowup_trigger(size_fn: Callable[[], int],
                               alerts: List[OpsAlert],
                               threshold: int = 10_000) -> Trigger:
    """Fire when the broadcast dedup seen-set exceeds ``threshold``."""
    state = {"size": 0}

    def predicate(event, history) -> bool:
        size = size_fn()
        if size <= threshold:
            return False
        state["size"] = size
        return True

    return Trigger(
        name="ops:dedup-cache-blowup",
        action=_alerting(
            "ops:dedup-cache-blowup", alerts,
            lambda: "dedup seen-set at %d entries (threshold %d)"
            % (state["size"], threshold)),
        predicate=predicate, once=True)


def retransmission_storm_trigger(alerts: List[OpsAlert],
                                 threshold: int = 25) -> Trigger:
    """Fire when retransmissions since arming exceed ``threshold``."""
    start = PERF.requests_retransmitted

    def predicate(event, history) -> bool:
        return PERF.requests_retransmitted - start >= threshold

    return Trigger(
        name="ops:retransmission-storm",
        action=_alerting(
            "ops:retransmission-storm", alerts,
            lambda: "%d retransmissions since armed (threshold %d)"
            % (PERF.requests_retransmitted - start, threshold)),
        predicate=predicate, once=True)


def host_down_trigger(alerts: List[OpsAlert]) -> Trigger:
    """Fire on the first detected sibling failure."""
    return Trigger(
        name="ops:host-down",
        action=_alerting("ops:host-down", alerts,
                         lambda: "sibling failure detected"),
        event_type=TraceEventType.FAILURE_DETECTED, once=True)


def watch_onset_trigger(alerts: List[OpsAlert]) -> Trigger:
    """Latch one alert per check-onset edge the watch loop records.

    The watch loop records a ``WATCH_EDGE`` event only when a check
    *transitions* (section "Continuous watch", ``docs/OPERATIONS.md``),
    so this trigger fires exactly once per incident onset no matter
    how many sweeps the condition persists.  Deliberately not
    ``once=True``: a second, later incident is a second alert.
    """
    state = {"check": "", "entities": ""}

    def predicate(event, history) -> bool:
        if event.details.get("edge") != "onset":
            return False
        state["check"] = event.details.get("check", "?")
        state["entities"] = ",".join(event.details.get("entities", ()))
        return True

    return Trigger(
        name="ops:watch-onset",
        action=_alerting(
            "ops:watch-onset", alerts,
            lambda: "%s onset (%s)" % (state["check"],
                                       state["entities"] or "-")),
        event_type=TraceEventType.WATCH_EDGE,
        predicate=predicate)


def latency_rising_trigger(sampler, alerts: List[OpsAlert],
                           op: str = "rpc_rtt",
                           window_ms: float = 60_000.0,
                           min_rate_ms_per_s: float = 1.0) -> Trigger:
    """Fire when ``op``'s sampled p99 trends upward across the window.

    Evaluated against :meth:`~repro.perf.timeseries.MetricsSampler.
    rising` over the ``<op>_p99_ms`` ring series, so it needs at least
    two watch sweeps' worth of samples before it can fire; the rate
    floor keeps bucket-granularity wobble from latching an alert.
    """
    series = "%s_p99_ms" % (op,)
    state = {"rate": 0.0}

    def predicate(event, history) -> bool:
        rate = sampler.rising((series,), window_ms).get(series)
        if rate is None or rate < min_rate_ms_per_s:
            return False
        state["rate"] = rate
        return True

    return Trigger(
        name="ops:latency-rising",
        action=_alerting(
            "ops:latency-rising", alerts,
            lambda: "%s p99 rising %.2f ms/s over %.0fms window"
            % (op, state["rate"], window_ms)),
        predicate=predicate, once=True)


def install_ops_triggers(engine,
                         alerts: Optional[List[OpsAlert]] = None,
                         summary_fn: Optional[Callable] = None,
                         baseline: Optional[Dict[str, float]] = None,
                         dedup_size_fn: Optional[Callable] = None,
                         p99_op: str = "rpc_rtt",
                         p99_factor: float = 2.0,
                         repair_threshold: int = 10,
                         flap_window_ms: float = 60_000.0,
                         flap_threshold: int = 3,
                         dedup_threshold: int = 10_000,
                         retransmit_threshold: int = 25,
                         sampler=None,
                         rising_window_ms: float = 60_000.0,
                         rising_min_rate_ms_per_s: float = 1.0
                         ) -> List[OpsAlert]:
    """Arm the standard operational set on a trigger engine.

    Returns the shared alert log (created if not given) — hand it to
    :func:`repro.ops.doctor.probe_world` so the doctor's
    ``trigger-alerts`` check sees the firings.  The p99 trigger is
    installed only when both a ``summary_fn`` and a baseline p99 for
    ``p99_op`` are available; the dedup trigger only with a
    ``dedup_size_fn``; the latency-rising trigger only with a
    ``sampler`` (the one the watch loop feeds).

    Idempotent per engine: a trigger whose name is already armed is
    skipped, so arming twice (a session helper *and* a watch loop,
    say) never double-registers — and never latches duplicate alerts
    for one condition.
    """
    log = alerts if alerts is not None else []
    installed = {trigger.name for trigger in engine.triggers}

    def arm(trigger) -> None:
        if trigger.name not in installed:
            installed.add(trigger.name)
            engine.add(trigger)

    if summary_fn is not None and baseline and \
            baseline.get(p99_op) is not None:
        arm(p99_regression_trigger(
            summary_fn, baseline[p99_op], log, op=p99_op,
            factor=p99_factor))
    arm(tree_repair_storm_trigger(log, threshold=repair_threshold))
    arm(ccs_flap_trigger(log, window_ms=flap_window_ms,
                         threshold=flap_threshold))
    if dedup_size_fn is not None:
        arm(dedup_cache_blowup_trigger(
            dedup_size_fn, log, threshold=dedup_threshold))
    arm(retransmission_storm_trigger(
        log, threshold=retransmit_threshold))
    if sampler is not None:
        arm(latency_rising_trigger(
            sampler, log, op=p99_op, window_ms=rising_window_ms,
            min_rate_ms_per_s=rising_min_rate_ms_per_s))
    arm(host_down_trigger(log))
    arm(watch_onset_trigger(log))
    return log
