"""The health-check library: pure functions over a :class:`WorldView`.

The doctor's architecture mirrors the PR 7 fabric seam: everything
backend-specific lives in a *probe* (:mod:`repro.ops.doctor` for netsim
worlds, :func:`repro.realnet.session.probe_fleet` for live serve
fleets), and the probes converge on one backend-neutral
:class:`WorldView`.  Every check in this module consumes only that
view, so the same checks — and the same verdict names, details, and
exit codes — serve both backends.

Checks are ordered by the triage runbook (``docs/OPERATIONS.md``):
daemon layer first, then LPMs, then the overlay, then outstanding
obligations (RPC), then throttling/SLOs.  The doctor's exit code is
the code of the *first* failing check in that order, so a non-zero
exit always names the highest-priority broken layer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Check name -> distinct process exit code, in triage order.  0 is
#: reserved for "healthy"; the codes are part of the CLI contract
#: (scripts and CI match on them) and must never be renumbered.
EXIT_CODES = {
    "daemon-liveness": 10,
    "lpm-liveness": 11,
    "orphan-processes": 12,
    "overlay-degree": 13,
    "broadcast-coverage": 14,
    "rpc-anomalies": 15,
    "latency-slo": 16,
    "registry-staleness": 17,
    "trigger-alerts": 18,
}

#: The triage order (dict order is insertion order, but be explicit).
CHECK_ORDER = tuple(EXIT_CODES)


# ----------------------------------------------------------------------
# The backend-neutral view the probes produce
# ----------------------------------------------------------------------

@dataclass
class HostHealth:
    """One host as the probe saw it."""

    name: str
    up: bool
    daemon: bool          #: inetd/pmd (netsim) or serve process (realnet)
    detail: str = ""


@dataclass
class LpmHealth:
    """One (host, user) LPM as the probe saw it."""

    host: str
    user: str
    alive: bool
    siblings: Tuple[str, ...] = ()
    pending_requests: int = 0


@dataclass
class OrphanRecord:
    """A live process no live LPM administers."""

    host: str
    user: str
    pid: int
    command: str


@dataclass
class OpsAlert:
    """One operational-trigger firing surfaced to the doctor."""

    name: str
    detail: str
    time_ms: float


@dataclass
class WorldView:
    """Everything the checks need, backend-neutral."""

    backend: str                                 #: "netsim" | "realnet"
    expected_hosts: Tuple[str, ...] = ()
    hosts: Dict[str, HostHealth] = field(default_factory=dict)
    lpms: List[LpmHealth] = field(default_factory=list)
    orphans: List[OrphanRecord] = field(default_factory=list)
    #: Degree bound k when the sparse overlay policy is active; None
    #: means the bound (and tree coverage) is not an invariant here.
    sparse_degree: Optional[int] = None
    topology_policy: str = "on_demand"
    counters: Dict[str, int] = field(default_factory=dict)
    #: op class -> histogram summary (from ``tracer.latency_summary()``).
    latency: Dict[str, dict] = field(default_factory=dict)
    #: realnet only: host -> (address, port) as published.
    registry_entries: Dict[str, tuple] = field(default_factory=dict)
    #: realnet only: published hosts whose listener no longer answers.
    stale_entries: List[str] = field(default_factory=list)
    alerts: List[OpsAlert] = field(default_factory=list)
    #: When the probe sampled the world, on the backend clock
    #: (simulated ms on netsim, fabric wall-clock ms on realnet).
    #: Watch journal records and ``doctor --json`` share this field.
    probed_at_ms: Optional[float] = None


@dataclass
class DoctorConfig:
    """Thresholds; defaults sized so a healthy demo session passes."""

    #: ``requests_retransmitted`` beyond this is an RPC anomaly.
    max_retransmits: int = 25
    #: Outstanding requests on any one LPM beyond this is an anomaly.
    max_pending_requests: int = 64
    #: p99 regression factor against the recorded baseline.
    slo_factor: float = 2.0
    #: Histogram classes with fewer samples than this are not judged.
    slo_min_count: int = 5
    #: Sparse-overlay degree slack: a node owns ~k outgoing ring/chord
    #: edges and accepts up to ~k incoming ones, so 2k is the bound.
    degree_slack: int = 2


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------

@dataclass
class CheckResult:
    """One check's verdict."""

    name: str
    ok: bool
    detail: str
    data: dict = field(default_factory=dict)
    #: Wall-clock cost of evaluating this check (set by
    #: :func:`run_checks`; diagnostics only — never deterministic).
    duration_ms: Optional[float] = None

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else EXIT_CODES[self.name]


class DoctorReport:
    """The ordered check results plus the exit-code contract."""

    def __init__(self, backend: str, results: Sequence[CheckResult],
                 view: Optional[WorldView] = None) -> None:
        self.backend = backend
        self.results = list(results)
        self.view = view

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def failing(self) -> List[CheckResult]:
        return [result for result in self.results if not result.ok]

    @property
    def exit_code(self) -> int:
        """0 when healthy; else the first failing check's code, in
        triage order — the highest-priority broken layer names the
        exit."""
        for result in self.results:
            if not result.ok:
                return result.exit_code
        return 0

    def to_dict(self) -> dict:
        return report_to_dict(self)

    def render(self) -> str:
        from ..util import format_table
        rows = [[result.name, "ok" if result.ok else "FAIL",
                 result.detail] for result in self.results]
        table = format_table(
            ["check", "status", "detail"], rows,
            title="doctor report (%s backend)" % (self.backend,))
        if self.ok:
            verdict = "doctor: healthy (exit 0)"
        else:
            first = self.failing[0]
            verdict = ("doctor: UNHEALTHY — first failing check "
                       "'%s' (exit %d)" % (first.name, first.exit_code))
        return "%s\n%s" % (table, verdict)


# ----------------------------------------------------------------------
# The shared serialization (doctor --json and the watch journal)
# ----------------------------------------------------------------------

def check_to_dict(result: CheckResult) -> dict:
    """One check as a plain dict — the *one* per-check schema, shared
    by ``repro doctor --json`` and watch incident-journal records."""
    return {"name": result.name, "ok": result.ok,
            "detail": result.detail, "exit_code": result.exit_code,
            "duration_ms": result.duration_ms, "data": result.data}


def report_to_dict(report: "DoctorReport") -> dict:
    """A full report as a plain dict (``repro doctor --json``)."""
    view = report.view
    return {
        "backend": report.backend,
        "ok": report.ok,
        "exit_code": report.exit_code,
        "probed_at_ms": view.probed_at_ms if view is not None else None,
        "checks": [check_to_dict(r) for r in report.results],
    }


def offending_entities(result: CheckResult) -> Tuple[str, ...]:
    """The entities a failing check blames, as stable display strings.

    This is what a watch journal record carries in its ``entities``
    field — the *who*, separated from the free-text ``detail``, so an
    incident for host ``gamma`` is machine-matchable on both backends.
    Passing checks (and checks without per-entity data) yield ``()``.
    """
    data = result.data
    if result.name == "daemon-liveness":
        return tuple(sorted(set(data.get("missing", ())) |
                            set(data.get("down", ())) |
                            set(data.get("daemon_dead", ()))))
    if result.name == "lpm-liveness":
        return tuple(sorted("%s@%s" % (user, host)
                            for host, user in data.get("dead", ())))
    if result.name == "orphan-processes":
        return tuple(sorted("%s:%d" % (host, pid) for host, _user, pid,
                            _command in data.get("orphans", ())))
    if result.name == "overlay-degree":
        return tuple(sorted("%s@%s" % (user, host)
                            for host, user, _degree
                            in data.get("over", ())))
    if result.name == "broadcast-coverage":
        return tuple(data.get("unreachable", ()))
    if result.name == "registry-staleness":
        return tuple(data.get("stale", ()))
    if result.name == "trigger-alerts":
        return tuple(sorted({name for name, _detail, _time_ms
                             in data.get("alerts", ())}))
    return ()


# ----------------------------------------------------------------------
# The checks, in triage order
# ----------------------------------------------------------------------

def check_daemon_liveness(view: WorldView,
                          config: DoctorConfig) -> CheckResult:
    """Every expected host is up and its daemon layer answers."""
    missing = [h for h in view.expected_hosts if h not in view.hosts]
    down = [h.name for h in view.hosts.values() if not h.up]
    dead_daemon = [h.name for h in view.hosts.values()
                   if h.up and not h.daemon]
    problems = []
    if missing:
        problems.append("unprobed: %s" % ", ".join(sorted(missing)))
    if down:
        problems.append("down: %s" % ", ".join(sorted(down)))
    if dead_daemon:
        problems.append("daemon dead: %s" % ", ".join(sorted(dead_daemon)))
    if problems:
        return CheckResult("daemon-liveness", False, "; ".join(problems),
                           {"missing": sorted(missing),
                            "down": sorted(down),
                            "daemon_dead": sorted(dead_daemon)})
    return CheckResult("daemon-liveness", True,
                       "%d/%d hosts up, daemons answering"
                       % (len(view.hosts), len(view.expected_hosts)))


def check_lpm_liveness(view: WorldView,
                       config: DoctorConfig) -> CheckResult:
    """Every registered LPM is actually running."""
    dead = [lpm for lpm in view.lpms if not lpm.alive]
    if dead:
        detail = "dead LPMs: %s" % ", ".join(
            sorted("%s@%s" % (lpm.user, lpm.host) for lpm in dead))
        return CheckResult("lpm-liveness", False, detail,
                           {"dead": [(l.host, l.user) for l in dead]})
    if not view.lpms:
        return CheckResult("lpm-liveness", True,
                           "no LPMs registered (idle world)")
    return CheckResult("lpm-liveness", True,
                       "%d LPM(s) alive" % len(view.lpms))


def check_orphans(view: WorldView, config: DoctorConfig) -> CheckResult:
    """No live process lacks a live LPM administering it."""
    if view.orphans:
        sample = ", ".join("%s pid %d (%s)" % (o.host, o.pid, o.command)
                           for o in view.orphans[:4])
        extra = "" if len(view.orphans) <= 4 else \
            " (+%d more)" % (len(view.orphans) - 4)
        return CheckResult(
            "orphan-processes", False,
            "%d orphaned: %s%s" % (len(view.orphans), sample, extra),
            {"orphans": [(o.host, o.user, o.pid, o.command)
                         for o in view.orphans]})
    return CheckResult("orphan-processes", True, "no orphaned processes")


def check_overlay_degree(view: WorldView,
                         config: DoctorConfig) -> CheckResult:
    """Under the sparse policy, every LPM's degree stays <= slack*k."""
    if view.sparse_degree is None:
        return CheckResult(
            "overlay-degree", True,
            "degree bound not applicable (policy %r)"
            % (view.topology_policy,))
    bound = config.degree_slack * view.sparse_degree
    over = [(lpm, len(lpm.siblings)) for lpm in view.lpms
            if lpm.alive and len(lpm.siblings) > bound]
    if over:
        detail = "degree over %d: %s" % (bound, ", ".join(
            "%s@%s=%d" % (lpm.user, lpm.host, deg)
            for lpm, deg in over[:4]))
        return CheckResult("overlay-degree", False, detail,
                           {"bound": bound,
                            "over": [(l.host, l.user, d)
                                     for l, d in over]})
    degrees = [len(lpm.siblings) for lpm in view.lpms if lpm.alive]
    return CheckResult(
        "overlay-degree", True,
        "max degree %d <= bound %d (k=%d)"
        % (max(degrees) if degrees else 0, bound, view.sparse_degree))


def check_broadcast_coverage(view: WorldView,
                             config: DoctorConfig) -> CheckResult:
    """Under the sparse policy, the live sibling graph is connected, so
    a broadcast tree rooted anywhere can reach every live LPM."""
    if view.sparse_degree is None:
        return CheckResult(
            "broadcast-coverage", True,
            "coverage enforced under the sparse policy only (policy %r)"
            % (view.topology_policy,))
    live = {lpm.host: lpm for lpm in view.lpms if lpm.alive}
    if len(live) <= 1:
        return CheckResult("broadcast-coverage", True,
                           "%d live LPM(s): trivially covered"
                           % len(live))
    # Undirected reachability over live sibling edges.
    edges: Dict[str, set] = {host: set() for host in live}
    for lpm in live.values():
        for peer in lpm.siblings:
            if peer in live:
                edges[lpm.host].add(peer)
                edges[peer].add(lpm.host)
    start = sorted(live)[0]
    seen = {start}
    frontier = [start]
    while frontier:
        for peer in edges[frontier.pop()]:
            if peer not in seen:
                seen.add(peer)
                frontier.append(peer)
    unreachable = sorted(set(live) - seen)
    if unreachable:
        return CheckResult(
            "broadcast-coverage", False,
            "overlay partitioned: %s unreachable from %s"
            % (", ".join(unreachable), start),
            {"unreachable": unreachable, "from": start})
    return CheckResult("broadcast-coverage", True,
                       "all %d live LPMs reachable" % len(live))


def check_rpc_anomalies(view: WorldView,
                        config: DoctorConfig) -> CheckResult:
    """Retransmission and pending-request volumes look sane."""
    retransmits = view.counters.get("requests_retransmitted", 0)
    worst = max(view.lpms, key=lambda l: l.pending_requests,
                default=None)
    problems = []
    if retransmits > config.max_retransmits:
        problems.append("%d retransmissions (threshold %d)"
                        % (retransmits, config.max_retransmits))
    if worst is not None and \
            worst.pending_requests > config.max_pending_requests:
        problems.append("%d pending requests on %s@%s (threshold %d)"
                        % (worst.pending_requests, worst.user,
                           worst.host, config.max_pending_requests))
    if problems:
        return CheckResult("rpc-anomalies", False, "; ".join(problems),
                           {"retransmits": retransmits})
    return CheckResult(
        "rpc-anomalies", True,
        "%d retransmissions, max %d pending"
        % (retransmits,
           worst.pending_requests if worst is not None else 0))


def check_latency_slo(view: WorldView, config: DoctorConfig,
                      baseline: Optional[Dict[str, float]] = None
                      ) -> CheckResult:
    """Per-operation p99 stays within ``slo_factor`` of the recorded
    baseline (see ``repro doctor --write-baseline``)."""
    if not baseline:
        return CheckResult("latency-slo", True,
                           "no baseline recorded; SLO check skipped")
    regressions = []
    for op, budget_p99 in sorted(baseline.items()):
        block = view.latency.get(op)
        if block is None or budget_p99 is None or budget_p99 <= 0:
            continue
        if block.get("count", 0) < config.slo_min_count:
            continue
        p99 = block.get("p99_ms")
        if p99 is not None and p99 > config.slo_factor * budget_p99:
            regressions.append("%s p99 %.1fms > %.1fx baseline %.1fms"
                               % (op, p99, config.slo_factor,
                                  budget_p99))
    if regressions:
        return CheckResult("latency-slo", False,
                           "; ".join(regressions),
                           {"regressions": regressions})
    return CheckResult("latency-slo", True,
                       "p99 within %.1fx of baseline for %d op class(es)"
                       % (config.slo_factor, len(baseline)))


def check_registry_staleness(view: WorldView,
                             config: DoctorConfig) -> CheckResult:
    """Every published realnet registry entry still answers."""
    if view.backend != "realnet":
        return CheckResult("registry-staleness", True,
                           "no registry on the %s backend"
                           % (view.backend,))
    if view.stale_entries:
        return CheckResult(
            "registry-staleness", False,
            "stale entries (published but not answering): %s"
            % ", ".join(sorted(view.stale_entries)),
            {"stale": sorted(view.stale_entries)})
    return CheckResult("registry-staleness", True,
                       "%d registry entries, all answering"
                       % len(view.registry_entries))


def check_trigger_alerts(view: WorldView,
                         config: DoctorConfig) -> CheckResult:
    """No operational trigger has fired."""
    if view.alerts:
        sample = "; ".join("%s (%s)" % (a.name, a.detail)
                           for a in view.alerts[:3])
        extra = "" if len(view.alerts) <= 3 else \
            " (+%d more)" % (len(view.alerts) - 3)
        return CheckResult(
            "trigger-alerts", False,
            "%d alert(s): %s%s" % (len(view.alerts), sample, extra),
            {"alerts": [(a.name, a.detail, a.time_ms)
                        for a in view.alerts]})
    return CheckResult("trigger-alerts", True,
                       "no operational triggers fired")


#: name -> function; iterated in CHECK_ORDER by :func:`run_checks`.
_CHECK_FNS = {
    "daemon-liveness": check_daemon_liveness,
    "lpm-liveness": check_lpm_liveness,
    "orphan-processes": check_orphans,
    "overlay-degree": check_overlay_degree,
    "broadcast-coverage": check_broadcast_coverage,
    "rpc-anomalies": check_rpc_anomalies,
    "latency-slo": check_latency_slo,
    "registry-staleness": check_registry_staleness,
    "trigger-alerts": check_trigger_alerts,
}


def run_checks(view: WorldView,
               baseline: Optional[Dict[str, float]] = None,
               config: Optional[DoctorConfig] = None) -> DoctorReport:
    """Run every check against the view, in triage order."""
    config = config if config is not None else DoctorConfig()
    results = []
    for name in CHECK_ORDER:
        fn = _CHECK_FNS[name]
        started = time.perf_counter()
        if name == "latency-slo":
            result = fn(view, config, baseline)
        else:
            result = fn(view, config)
        result.duration_ms = (time.perf_counter() - started) * 1000.0
        results.append(result)
    return DoctorReport(view.backend, results, view=view)
