"""The incident journal: append-only JSONL under a watch loop.

The watch loop (:mod:`repro.ops.watch`) emits *edges* — a check that
passed last sweep fails now (onset), or the reverse (clear).  This
module persists them: one JSON object per line, append-only, so a
crashed watcher loses at most the line it was writing and a tail of
the file is always a valid suffix of the incident history.

Record shapes (also tabulated in ``docs/OPERATIONS.md``):

``{"kind": "watch-start", ...}``
    One header per watch run.  Carries the *run* facts — backend,
    interval, check roster — so the incident records themselves stay
    backend-free: the same drill on netsim and realnet yields
    identical incident lines modulo timestamps (the cross-backend
    conformance test pins this).
``{"kind": "incident", ...}``
    One line per edge: monotonic ``seq``, the backend clock ``t_ms``
    (simulated ms on netsim, wall ms on realnet), the ``check`` name,
    the ``edge`` direction, the offending ``entities``, the check's
    triage ``exit_code``, and the ``runbook`` anchor into
    ``docs/OPERATIONS.md``.  Clear records add ``duration_ms`` — time
    from onset to clear, the number MTTR summarises.

``repro incidents`` renders a journal back into a timeline plus
per-check MTTR (:func:`render_incidents`).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

#: Schema version stamped into the header record.
JOURNAL_VERSION = 1


class IncidentJournal:
    """Append-only JSONL sink for watch edges.

    ``path=None`` keeps the journal in memory only (tests, ad-hoc
    watches); every record lands in :attr:`records` either way.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self.records: List[dict] = []
        self._seq = 0

    # -- writing ---------------------------------------------------------

    def _append(self, record: dict) -> dict:
        record["seq"] = self._seq
        self._seq += 1
        self.records.append(record)
        if self.path is not None:
            with open(self.path, "a", encoding="utf-8") as handle:
                json.dump(record, handle, sort_keys=True)
                handle.write("\n")
        return record

    def start(self, backend: str, interval_ms: float,
              checks: Sequence[str], t_ms: float) -> dict:
        """Write the run header (the backend-specific facts live here)."""
        return self._append({
            "kind": "watch-start",
            "version": JOURNAL_VERSION,
            "backend": backend,
            "interval_ms": interval_ms,
            "checks": list(checks),
            "t_ms": t_ms,
        })

    def record_edge(self, edge) -> dict:
        """Write one :class:`~repro.ops.watch.WatchEdge` as an incident
        line.  ``duration_ms`` appears only on clear edges."""
        record = {
            "kind": "incident",
            "t_ms": edge.t_ms,
            "check": edge.check,
            "edge": edge.edge,
            "entities": list(edge.entities),
            "exit_code": edge.exit_code,
            "detail": edge.detail,
            "runbook": edge.runbook,
        }
        if edge.duration_ms is not None:
            record["duration_ms"] = edge.duration_ms
        return self._append(record)


# ----------------------------------------------------------------------
# Reading a journal back
# ----------------------------------------------------------------------

def read_journal(path: str) -> List[dict]:
    """Parse a JSONL journal file.  Tolerates a torn final line (the
    crash-mid-append case the append-only format exists for)."""
    records: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                break  # torn tail: everything before it is valid
    return records


def incident_records(records: Sequence[dict]) -> List[dict]:
    return [r for r in records if r.get("kind") == "incident"]


def mttr_by_check(records: Sequence[dict]) -> Dict[str, dict]:
    """Per-check incident statistics from a journal.

    Pairs each clear with its preceding onset (the watch loop never
    emits two onsets for one check without a clear between, so plain
    ordering pairs them).  Returns per check::

        {"onsets": n, "clears": n, "open": bool,
         "mttr_ms": mean onset->clear time or None}
    """
    stats: Dict[str, dict] = {}
    opened: Dict[str, float] = {}
    for record in incident_records(records):
        check = record["check"]
        entry = stats.setdefault(check, {"onsets": 0, "clears": 0,
                                         "open": False, "mttr_ms": None,
                                         "_repair_ms": []})
        if record["edge"] == "onset":
            entry["onsets"] += 1
            entry["open"] = True
            opened[check] = record["t_ms"]
        elif record["edge"] == "clear":
            entry["clears"] += 1
            entry["open"] = False
            onset_t = opened.pop(check, None)
            repair = record.get("duration_ms")
            if repair is None and onset_t is not None:
                repair = record["t_ms"] - onset_t
            if repair is not None:
                entry["_repair_ms"].append(repair)
    for entry in stats.values():
        repairs = entry.pop("_repair_ms")
        if repairs:
            entry["mttr_ms"] = sum(repairs) / len(repairs)
    return stats


def render_incidents(records: Sequence[dict]) -> str:
    """The ``repro incidents`` view: a timeline, then MTTR per check."""
    from ..util import format_table

    parts: List[str] = []
    header = next((r for r in records if r.get("kind") == "watch-start"),
                  None)
    if header is not None:
        parts.append("watch on %s backend, sweep every %.0f ms"
                     % (header.get("backend", "?"),
                        header.get("interval_ms", 0.0)))
    incidents = incident_records(records)
    if not incidents:
        parts.append("no incidents recorded")
        return "\n".join(parts)

    rows = []
    for record in incidents:
        duration = record.get("duration_ms")
        rows.append([
            "%.1f" % record["t_ms"],
            record["edge"].upper(),
            record["check"],
            ",".join(record.get("entities", ())) or "-",
            str(record.get("exit_code", "")),
            "%.1f ms" % duration if duration is not None else "",
        ])
    parts.append(format_table(
        ["t_ms", "edge", "check", "entities", "exit", "downtime"],
        rows, title="incident timeline"))

    stats = mttr_by_check(records)
    rows = [[check,
             str(entry["onsets"]),
             str(entry["clears"]),
             "yes" if entry["open"] else "no",
             "%.1f ms" % entry["mttr_ms"]
             if entry["mttr_ms"] is not None else "-"]
            for check, entry in sorted(stats.items())]
    parts.append("")
    parts.append(format_table(
        ["check", "onsets", "clears", "open", "mttr"],
        rows, title="mean time to recovery"))
    return "\n".join(parts)
