"""The doctor: probe a running world, run the checks, report.

Two probes feed the one check library (:mod:`repro.ops.checks`):

* :func:`probe_world` inspects an in-process netsim :class:`World`
  directly — LPM registry, kernel process tables, sibling graphs,
  perf counters, latency histograms.
* :func:`probe_fleet` inspects a live ``repro serve`` fleet over real
  TCP, by dialling each registry entry's ``__status__`` service
  through the same :class:`~repro.realnet.fabric.AsyncioFabric` the
  protocol stack uses (the PR 7 seam), and scanning ``/proc`` for
  orphaned real children.

Both return a :class:`~repro.ops.checks.WorldView`; hand it to
:func:`run_doctor` for the exit-code-bearing report.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

from ..perf import PERF
from .checks import (
    DoctorConfig,
    DoctorReport,
    HostHealth,
    LpmHealth,
    OpsAlert,
    OrphanRecord,
    WorldView,
    run_checks,
)

#: Trigger names with this prefix are operational alerts; the probes
#: surface their firings in the doctor report.
OPS_TRIGGER_PREFIX = "ops:"


# ----------------------------------------------------------------------
# The netsim probe
# ----------------------------------------------------------------------

def probe_world(world, alerts: Optional[List[OpsAlert]] = None,
                engines: Iterable = ()) -> WorldView:
    """Build a :class:`WorldView` from an in-process netsim world.

    ``alerts`` is an explicit alert log (see
    :func:`repro.ops.triggers.install_ops_triggers`); ``engines`` are
    :class:`~repro.tracing.triggers.TriggerEngine` instances whose
    ``ops:``-prefixed firings should surface too (a PPM's
    ``.triggers`` engine, typically).
    """
    hosts: Dict[str, HostHealth] = {}
    for name, host in sorted(world.hosts.items()):
        daemon = bool(host.up and host.inetd.proc.alive and
                      (host.pmd_daemon is None or
                       host.pmd_daemon.proc.alive))
        detail = "" if host.up else "crashed"
        hosts[name] = HostHealth(name=name, up=bool(host.up),
                                 daemon=daemon, detail=detail)

    lpms: List[LpmHealth] = []
    for (host_name, user), lpm in sorted(world.lpms.items()):
        lpms.append(LpmHealth(
            host=host_name, user=user, alive=bool(lpm.is_running()),
            siblings=tuple(sorted(lpm.authenticated_siblings())),
            pending_requests=len(lpm.rpc.pending)))

    orphans = _sim_orphans(world)

    sparse = world.config.topology_policy == "sparse"
    tracer = world.sim.tracer
    view = WorldView(
        backend="netsim",
        expected_hosts=tuple(sorted(world.hosts)),
        hosts=hosts,
        lpms=lpms,
        orphans=orphans,
        sparse_degree=world.config.sparse_degree if sparse else None,
        topology_policy=world.config.topology_policy,
        counters=PERF.snapshot(),
        latency=tracer.latency_summary() if tracer is not None else {},
        alerts=list(alerts) if alerts else [],
        probed_at_ms=float(world.sim.now_ms),
    )
    for engine in engines:
        view.alerts.extend(alerts_from_engine(engine))
    _dedupe_alerts(view)
    return view


def _sim_orphans(world) -> List[OrphanRecord]:
    """Live user processes on hosts where that user has no live LPM."""
    orphans: List[OrphanRecord] = []
    for host_name, host in sorted(world.hosts.items()):
        if not host.up:
            continue
        users_by_uid = {host.users.require(name).uid: name
                        for name in host.users.names()}
        for proc in host.kernel.procs:
            if not proc.alive or proc.uid not in users_by_uid:
                continue
            user = users_by_uid[proc.uid]
            lpm = world.lpms.get((host_name, user))
            if lpm is None or not lpm.is_running():
                orphans.append(OrphanRecord(
                    host=host_name, user=user, pid=proc.pid,
                    command=proc.command))
    return orphans


def alerts_from_engine(engine) -> List[OpsAlert]:
    """The ``ops:``-prefixed firings of one trigger engine."""
    return [OpsAlert(name=firing.trigger_name,
                     detail=str(firing.event.event_type.name),
                     time_ms=firing.time_ms)
            for firing in engine.firings
            if firing.trigger_name.startswith(OPS_TRIGGER_PREFIX)]


def _dedupe_alerts(view: WorldView) -> None:
    seen = set()
    unique = []
    for alert in view.alerts:
        key = (alert.name, alert.time_ms)
        if key not in seen:
            seen.add(key)
            unique.append(alert)
    view.alerts = unique


# ----------------------------------------------------------------------
# The realnet probe
# ----------------------------------------------------------------------

def probe_fleet(registry_path: str,
                expected_hosts: Optional[Sequence[str]] = None,
                timeout_ms: float = 3000.0,
                alerts: Optional[List[OpsAlert]] = None,
                fabric=None) -> WorldView:
    """Build a :class:`WorldView` from a live ``repro serve`` fleet.

    The socket work lives in :func:`repro.realnet.session.probe_fleet`
    (real-network APIs are confined to ``repro.realnet``); this
    function only reshapes its findings into the check library's
    view.  A published host that no longer answers is *both* a daemon
    failure and a stale registry entry — exactly what a SIGKILLed
    serve process leaves behind.  ``fabric`` is passed through to the
    socket layer so a watch loop can reuse one dial fabric across
    sweeps.
    """
    from ..realnet.session import probe_fleet as _probe

    raw = _probe(registry_path, expected_hosts=expected_hosts,
                 timeout_ms=timeout_ms, fabric=fabric)
    hosts: Dict[str, HostHealth] = {}
    lpms: List[LpmHealth] = []
    stale: List[str] = []
    for name, status in sorted(raw["statuses"].items()):
        ok = bool(status.get("ok"))
        hosts[name] = HostHealth(
            name=name, up=ok, daemon=ok,
            detail="" if ok else status.get("error", "no answer"))
        if not ok and name in raw["registry"]:
            stale.append(name)
        for service in status.get("services", ()):
            if service.startswith("lpm:"):
                lpms.append(LpmHealth(host=name,
                                      user=service.split(":")[1],
                                      alive=True))
    view = WorldView(
        backend="realnet",
        expected_hosts=tuple(sorted(raw["statuses"])),
        hosts=hosts,
        lpms=lpms,
        orphans=[OrphanRecord(host=o.get("host", "?"), user="",
                              pid=o["pid"], command=o["command"])
                 for o in raw.get("orphans", ())],
        sparse_degree=None,
        topology_policy="on_demand",
        counters=PERF.snapshot(),
        latency={},
        registry_entries=dict(raw["registry"]),
        stale_entries=stale,
        alerts=list(alerts) if alerts else [],
        probed_at_ms=raw.get("probed_at_ms"),
    )
    return view


# ----------------------------------------------------------------------
# Running the checks; baselines
# ----------------------------------------------------------------------

def run_doctor(view: WorldView,
               baseline: Optional[Dict[str, float]] = None,
               config: Optional[DoctorConfig] = None) -> DoctorReport:
    """Run every check; counts the run (and failures) in ``PERF``."""
    report = run_checks(view, baseline=baseline, config=config)
    PERF.doctor_runs += 1
    PERF.doctor_checks_failed += len(report.failing)
    return report


def load_baseline(path: str) -> Dict[str, float]:
    """Read a recorded p99 baseline (op class -> p99 ms)."""
    with open(path, "r", encoding="utf-8") as handle:
        raw = json.load(handle)
    block = raw.get("p99_ms", raw)
    return {str(op): float(value) for op, value in block.items()
            if value is not None}


def write_baseline(path: str, view: WorldView) -> Dict[str, float]:
    """Record the view's current p99s as the SLO baseline."""
    p99s = {op: block.get("p99_ms")
            for op, block in sorted(view.latency.items())
            if block.get("count", 0) > 0 and
            block.get("p99_ms") is not None}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"p99_ms": p99s}, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return p99s
