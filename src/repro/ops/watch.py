"""The continuous watch loop: sweep, diff, journal — on both backends.

``repro doctor`` is a single pull.  This module turns the same
read-only probes into a *loop*: sweep the world on an interval, run
the check library, and compare each check's verdict against the
previous sweep.  What comes out is not a stream of polls but a stream
of **edges**:

onset
    a check that passed last sweep fails now — a new incident.
clear
    a check that was failing passes again — the incident is over; the
    edge carries ``duration_ms`` (onset to clear, what MTTR averages).

Edges — never raw polls — are what feed everything downstream: the
incident journal (:mod:`repro.ops.journal`), the ``WATCH_EDGE`` trace
event that the prebuilt ``ops:watch-onset`` trigger latches on, and
the one-line console narration.  A condition that persists for a
thousand sweeps is one onset, not a thousand alerts; its recovery is
one clear.

The loop keeps the probes' read-only contract.  On **netsim**,
:func:`watch_world` advances the world's own virtual clock between
sweeps (``world.run_for``) and probes in-process — fully
deterministic, so two watches of the same seed produce byte-identical
journals (modulo nothing).  On **realnet**, :func:`watch_fleet` pumps
one long-lived :class:`~repro.realnet.fabric.AsyncioFabric` on
wall-clock intervals and dials each host's ``__status__`` service.
Both drivers converge on one :class:`Watcher` state machine, so the
same drill produces the same incident records on either backend — the
cross-backend conformance test pins that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..perf import PERF, MetricsSampler
from ..tracing.events import TraceEventType
from .checks import (CHECK_ORDER, DoctorConfig, DoctorReport,
                     offending_entities)
from .doctor import probe_fleet, probe_world, run_doctor

#: Default sweep interval: netsim virtual ms / realnet wall ms.
DEFAULT_INTERVAL_MS = 1000.0

#: Where each check's incident sends the operator — anchors into
#: ``docs/OPERATIONS.md``.  Backend-neutral on purpose: journal
#: records must match across backends, and the playbook chapter holds
#: both backends' recovery actions side by side.
RUNBOOK_ANCHORS: Dict[str, str] = {
    "daemon-liveness": "docs/OPERATIONS.md#fast-recovery-playbook",
    "lpm-liveness": "docs/OPERATIONS.md#fast-recovery-playbook",
    "orphan-processes": "docs/OPERATIONS.md#fast-recovery-playbook",
    "overlay-degree": "docs/OPERATIONS.md#fast-recovery-playbook",
    "broadcast-coverage": "docs/OPERATIONS.md#fast-recovery-playbook",
    "rpc-anomalies": "docs/OPERATIONS.md#fast-recovery-playbook",
    "latency-slo":
        "docs/OPERATIONS.md#the-health-baseline-what-healthy-looks-like",
    "registry-staleness": "docs/OPERATIONS.md#fast-recovery-playbook",
    "trigger-alerts":
        "docs/OPERATIONS.md#keeping-watch-between-doctor-runs",
}


@dataclass(frozen=True)
class WatchEdge:
    """One check transition between two consecutive sweeps."""

    t_ms: float               #: backend clock at the detecting sweep
    check: str                #: check name (``EXIT_CODES`` key)
    edge: str                 #: ``"onset"`` or ``"clear"``
    entities: Tuple[str, ...]  #: who — hosts, user@host, host:pid, ...
    exit_code: int            #: the check's triage code (0 on clear)
    detail: str               #: the check's one-line verdict
    runbook: str              #: anchor into ``docs/OPERATIONS.md``
    duration_ms: Optional[float] = None  #: clear only: onset -> clear


class Watcher:
    """The edge detector: a pure state machine over doctor reports.

    Feed it one :class:`~repro.ops.checks.DoctorReport` per sweep;
    it remembers which checks were failing and returns only the
    transitions.  Side channels are all optional: a ``journal``
    persists edges, a ``recorder`` turns them into ``WATCH_EDGE``
    trace events (which the ``ops:watch-onset`` trigger consumes),
    and a ``sampler`` snapshots the perf counters per sweep.
    ``checks`` narrows the watched set (default: all nine).
    """

    def __init__(self, checks: Optional[Sequence[str]] = None,
                 recorder=None, journal=None,
                 sampler: Optional[MetricsSampler] = None) -> None:
        self.checks: Optional[Tuple[str, ...]] = \
            tuple(checks) if checks is not None else None
        self.recorder = recorder
        self.journal = journal
        self.sampler = sampler
        self.sweeps = 0
        self.edges: List[WatchEdge] = []
        #: failing check -> (onset t_ms, onset entities)
        self._failing: Dict[str, Tuple[float, Tuple[str, ...]]] = {}

    def check_roster(self) -> Tuple[str, ...]:
        return self.checks if self.checks is not None else CHECK_ORDER

    def open_incidents(self) -> Dict[str, float]:
        """Currently-failing checks and their onset times."""
        return {check: onset_t
                for check, (onset_t, _) in self._failing.items()}

    def feed(self, report: DoctorReport, t_ms: float) -> List[WatchEdge]:
        """Diff one sweep's report against the previous; record edges."""
        PERF.watch_sweeps += 1
        self.sweeps += 1
        if self.sampler is not None:
            view = report.view
            self.sampler.sample(
                t_ms, latency=view.latency if view is not None else None)
        edges: List[WatchEdge] = []
        for result in report.results:
            if self.checks is not None and result.name not in self.checks:
                continue
            was_failing = result.name in self._failing
            if not result.ok and not was_failing:
                entities = offending_entities(result)
                self._failing[result.name] = (t_ms, entities)
                edges.append(WatchEdge(
                    t_ms=t_ms, check=result.name, edge="onset",
                    entities=entities, exit_code=result.exit_code,
                    detail=result.detail,
                    runbook=RUNBOOK_ANCHORS[result.name]))
            elif result.ok and was_failing:
                onset_t, onset_entities = self._failing.pop(result.name)
                edges.append(WatchEdge(
                    t_ms=t_ms, check=result.name, edge="clear",
                    entities=onset_entities, exit_code=0,
                    detail=result.detail,
                    runbook=RUNBOOK_ANCHORS[result.name],
                    duration_ms=t_ms - onset_t))
        for edge in edges:
            PERF.watch_edges += 1
            self.edges.append(edge)
            if self.journal is not None:
                self.journal.record_edge(edge)
            if self.recorder is not None:
                self.recorder.record(
                    TraceEventType.WATCH_EDGE, host="",
                    check=edge.check, edge=edge.edge,
                    entities=list(edge.entities),
                    exit_code=edge.exit_code)
        return edges


# ----------------------------------------------------------------------
# The two backend drivers
# ----------------------------------------------------------------------

def watch_world(world, interval_ms: float = DEFAULT_INTERVAL_MS,
                max_sweeps: int = 8,
                journal=None, checks: Optional[Sequence[str]] = None,
                sampler: Optional[MetricsSampler] = None,
                alerts=None, engines: Sequence = (),
                baseline: Optional[Dict[str, float]] = None,
                config: Optional[DoctorConfig] = None,
                on_sweep: Optional[Callable] = None) -> Watcher:
    """Watch an in-process netsim world.

    Each sweep advances the world's *virtual* clock by ``interval_ms``
    (``world.run_for`` — the workload runs; the probe never schedules)
    and then probes in-process, so the whole watch is deterministic:
    same seed, same journal, byte for byte.  ``on_sweep(watcher,
    report, edges)`` runs after every sweep — the CLI uses it for the
    console narration and the dead-host drill uses it to break and
    repair the world mid-watch.
    """
    watcher = Watcher(checks=checks, recorder=world.recorder,
                      journal=journal, sampler=sampler)
    if journal is not None:
        journal.start("netsim", interval_ms, watcher.check_roster(),
                      t_ms=float(world.sim.now_ms))
    for _ in range(max_sweeps):
        world.run_for(interval_ms)
        view = probe_world(world, alerts=alerts, engines=engines)
        report = run_doctor(view, baseline=baseline, config=config)
        edges = watcher.feed(report, t_ms=view.probed_at_ms)
        if on_sweep is not None:
            on_sweep(watcher, report, edges)
    return watcher


def watch_fleet(registry_path: str,
                interval_ms: float = DEFAULT_INTERVAL_MS,
                max_sweeps: int = 8,
                expected_hosts: Optional[Sequence[str]] = None,
                timeout_ms: float = 3000.0,
                journal=None, checks: Optional[Sequence[str]] = None,
                sampler: Optional[MetricsSampler] = None,
                alerts=None,
                baseline: Optional[Dict[str, float]] = None,
                config: Optional[DoctorConfig] = None,
                on_sweep: Optional[Callable] = None,
                recorder=None) -> Watcher:
    """Watch a live ``repro serve`` fleet over real TCP.

    One :class:`~repro.realnet.fabric.AsyncioFabric` lives for the
    whole watch (reused across sweeps via the probe's ``fabric``
    parameter); between sweeps the loop is pumped for ``interval_ms``
    of wall-clock time, so in-flight dials keep progressing while the
    watcher waits.  ``recorder`` is optional — pass one (with a
    trigger engine attached) to get ``WATCH_EDGE`` events and
    ``ops:watch-onset`` alerts, exactly as on netsim.
    """
    from ..realnet.fabric import AsyncioFabric
    from ..realnet.registry import HostRegistry

    watcher = Watcher(checks=checks, recorder=recorder,
                      journal=journal, sampler=sampler)
    fabric = AsyncioFabric(HostRegistry(registry_path),
                           local_host="watch")
    if journal is not None:
        journal.start("realnet", interval_ms, watcher.check_roster(),
                      t_ms=float(fabric.now_ms))
    try:
        for sweep in range(max_sweeps):
            if sweep:
                fabric.run_until_true(lambda: False,
                                      timeout_ms=interval_ms)
            view = probe_fleet(registry_path,
                               expected_hosts=expected_hosts,
                               timeout_ms=timeout_ms, alerts=alerts,
                               fabric=fabric)
            report = run_doctor(view, baseline=baseline, config=config)
            edges = watcher.feed(report, t_ms=view.probed_at_ms)
            if on_sweep is not None:
                on_sweep(watcher, report, edges)
    finally:
        fabric.close()
    return watcher
