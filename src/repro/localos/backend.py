"""The real-process manager: a single-host LPM over the local kernel.

The backend is the creation server for its processes (they are children
of this Python process, as PPM processes are children of the LPM),
controls them with genuine signals, tracks descendants through
``/proc``, and retains exit information — the paper's single-host
semantics on real hardware.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.control import ControlAction
from ..core.snapshot import ProcessRecord, SnapshotForest
from ..errors import NoSuchProcessError, PPMError
from ..ids import GlobalPid
from . import procfs

_ACTION_SIGNALS = {
    ControlAction.STOP: signal.SIGSTOP,
    ControlAction.CONTINUE: signal.SIGCONT,
    ControlAction.FOREGROUND: signal.SIGCONT,
    ControlAction.BACKGROUND: signal.SIGCONT,
    ControlAction.TERMINATE: signal.SIGTERM,
    ControlAction.KILL: signal.SIGKILL,
}


@dataclass
class ManagedProcess:
    """One process this backend created (or discovered as a
    descendant)."""

    pid: int
    command: str
    parent: Optional[GlobalPid]
    started_at: float
    popen: Optional[subprocess.Popen] = None
    exited: bool = False
    exit_status: Optional[int] = None
    ended_at: Optional[float] = None
    #: Last CPU usage sampled from /proc before exit.
    last_utime_ms: float = 0.0
    last_stime_ms: float = 0.0
    signals_sent: int = field(default=0)


class RealBackend:
    """Manage real local processes with PPM semantics."""

    def __init__(self, host_name: Optional[str] = None) -> None:
        self.host_name = host_name or socket.gethostname()
        self._managed: Dict[int, ManagedProcess] = {}

    # ------------------------------------------------------------------
    # Creation (the backend is the creation server)
    # ------------------------------------------------------------------

    def spawn(self, argv: Sequence[str], name: Optional[str] = None,
              parent: Optional[GlobalPid] = None) -> GlobalPid:
        """Start a child process; returns its ``<host, pid>`` identity."""
        popen = subprocess.Popen(
            list(argv), stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL, stdin=subprocess.DEVNULL)
        record = ManagedProcess(pid=popen.pid,
                                command=name or os.path.basename(argv[0]),
                                parent=parent, started_at=time.time(),
                                popen=popen)
        self._managed[popen.pid] = record
        return GlobalPid(self.host_name, popen.pid)

    def _discover_descendants(self) -> None:
        """Adoption of descendants: pull newly forked children of
        managed processes into management via /proc."""
        index = procfs.children_map()
        frontier = [pid for pid, rec in self._managed.items()
                    if not rec.exited]
        while frontier:
            pid = frontier.pop()
            for child in index.get(pid, []):
                if child in self._managed:
                    continue
                stat = procfs.read_stat(child)
                if stat is None:
                    continue
                self._managed[child] = ManagedProcess(
                    pid=child, command=stat.command,
                    parent=GlobalPid(self.host_name, pid),
                    started_at=time.time())
                frontier.append(child)

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    def refresh(self) -> None:
        """Sample /proc, reap exits, keep exit records (section 2's
        retention rule: exit information survives)."""
        self._discover_descendants()
        for record in self._managed.values():
            if record.exited:
                continue
            stat = procfs.read_stat(record.pid)
            if stat is not None and stat.state != "exited":
                record.last_utime_ms = stat.utime_ms
                record.last_stime_ms = stat.stime_ms
                continue
            record.exited = True
            record.ended_at = time.time()
            if record.popen is not None:
                record.exit_status = record.popen.poll()
                if record.exit_status is None:
                    try:
                        record.exit_status = record.popen.wait(timeout=2.0)
                    except subprocess.TimeoutExpired:  # pragma: no cover
                        record.exit_status = None

    def state_of(self, gpid: GlobalPid) -> str:
        self._require_local(gpid)
        record = self._managed.get(gpid.pid)
        if record is None:
            raise NoSuchProcessError(str(gpid))
        if record.exited:
            return "exited"
        stat = procfs.read_stat(gpid.pid)
        if stat is None:
            self.refresh()
            return "exited"
        return stat.state

    def managed_pids(self) -> List[int]:
        return sorted(self._managed)

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------

    def control(self, gpid: GlobalPid, action: ControlAction) -> None:
        """Deliver a control action by real signal."""
        self._require_local(gpid)
        record = self._managed.get(gpid.pid)
        if record is None:
            raise NoSuchProcessError(str(gpid))
        if record.exited:
            return
        try:
            os.kill(gpid.pid, _ACTION_SIGNALS[action])
            record.signals_sent += 1
        except ProcessLookupError:
            self.refresh()

    def control_tree(self, root: GlobalPid,
                     action: ControlAction) -> List[GlobalPid]:
        """The computation-level broadcast: children before parents."""
        self.refresh()
        forest = self.snapshot(prune=False)
        targets = [gpid for gpid in forest.descendants(root)
                   if not forest.records[gpid].exited]
        if root in forest and not forest.records[root].exited:
            targets.append(root)
        for gpid in targets:
            self.control(gpid, action)
        return targets

    def wait_all(self, timeout_s: float = 30.0) -> None:
        """Wait for every directly spawned child to finish."""
        deadline = time.time() + timeout_s
        for record in list(self._managed.values()):
            if record.popen is None or record.exited:
                continue
            remaining = max(deadline - time.time(), 0.01)
            try:
                record.popen.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                raise PPMError("pid %d did not exit in time"
                               % (record.pid,))
        self.refresh()

    # ------------------------------------------------------------------
    # The snapshot tool
    # ------------------------------------------------------------------

    def snapshot(self, prune: bool = True) -> SnapshotForest:
        """The genealogical snapshot, on real processes."""
        self.refresh()
        forest = SnapshotForest(taken_at_ms=time.time() * 1000.0)
        for record in self._managed.values():
            if record.exited:
                state = "exited"
            else:
                stat = procfs.read_stat(record.pid)
                state = stat.state if stat is not None else "exited"
            forest.add(ProcessRecord(
                gpid=GlobalPid(self.host_name, record.pid),
                parent=record.parent,
                user=str(os.getuid()),
                command=record.command,
                state=state,
                start_ms=record.started_at * 1000.0,
                end_ms=record.ended_at * 1000.0
                if record.ended_at else None,
                exit_status=record.exit_status,
                rusage={"utime_ms": record.last_utime_ms,
                        "stime_ms": record.last_stime_ms,
                        "signals": record.signals_sent}))
        return forest.prune_exited_leaves() if prune else forest

    def rstats(self) -> List[ProcessRecord]:
        """Exited-process records, for the rstats report."""
        self.refresh()
        return [record for record in self.snapshot(prune=False).records.values()
                if record.exited]

    # ------------------------------------------------------------------
    # Cleanup
    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Kill everything still alive (the time-to-die action)."""
        self.refresh()
        for record in self._managed.values():
            if record.exited:
                continue
            try:
                os.kill(record.pid, signal.SIGKILL)
            except ProcessLookupError:
                continue
        for record in self._managed.values():
            if record.popen is not None and record.popen.poll() is None:
                try:
                    record.popen.wait(timeout=5.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    pass
        self.refresh()

    def _require_local(self, gpid: GlobalPid) -> None:
        if gpid.host != self.host_name:
            raise PPMError("%s is not on this host (%s)"
                           % (gpid, self.host_name))

    def __enter__(self) -> "RealBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
