"""Real-operating-system backend.

The paper's repro band today: the single-host slice of the PPM needs
nothing beyond ``subprocess`` and signals.  This package drives *real*
processes on the local Linux machine with the same concepts and data
model as the simulator — creation as a managed server, control by
signal, genealogy from ``/proc`` (the Killian "processes as files"
approach the paper cites as the elegant alternative, section 6), exit
records retained while children live.
"""

from .procfs import ProcStat, read_stat, children_map, descendants
from .backend import RealBackend, ManagedProcess

__all__ = [
    "ProcStat",
    "read_stat",
    "children_map",
    "descendants",
    "RealBackend",
    "ManagedProcess",
]
