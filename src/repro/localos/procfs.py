"""Reading genealogy and state from ``/proc``.

Section 6 discusses the ``/proc`` "processes as files" mechanism as an
elegant alternative the authors would have used for message delivery;
here it supplies what the simulated kernel's event messages supply in
:mod:`repro.unixsim`: process state and parent links.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

#: /proc stat state letters -> the record states used by snapshots.
_STATE_NAMES = {
    "R": "running",
    "S": "sleeping",
    "D": "sleeping",   # uninterruptible sleep
    "I": "sleeping",   # idle kernel thread
    "T": "stopped",
    "t": "stopped",    # tracing stop
    "Z": "exited",
    "X": "exited",
}


@dataclass(frozen=True)
class ProcStat:
    """The fields of ``/proc/<pid>/stat`` the backend needs."""

    pid: int
    command: str
    state: str
    ppid: int
    utime_ticks: int
    stime_ticks: int

    @property
    def utime_ms(self) -> float:
        hertz = os.sysconf("SC_CLK_TCK")
        return 1000.0 * self.utime_ticks / hertz

    @property
    def stime_ms(self) -> float:
        hertz = os.sysconf("SC_CLK_TCK")
        return 1000.0 * self.stime_ticks / hertz


def read_stat(pid: int) -> Optional[ProcStat]:
    """Parse ``/proc/<pid>/stat``; None when the process is gone."""
    try:
        with open("/proc/%d/stat" % pid, "rb") as handle:
            raw = handle.read().decode("ascii", "replace")
    except (FileNotFoundError, ProcessLookupError, PermissionError):
        return None
    # The command is parenthesised and may contain spaces/parens; split
    # around the *last* closing paren.
    open_paren = raw.index("(")
    close_paren = raw.rindex(")")
    command = raw[open_paren + 1:close_paren]
    fields = raw[close_paren + 2:].split()
    # fields[0] is the state letter; ppid is fields[1]; utime/stime are
    # fields 11/12 (0-indexed after the state letter removal shift).
    return ProcStat(pid=pid, command=command,
                    state=_STATE_NAMES.get(fields[0], "running"),
                    ppid=int(fields[1]),
                    utime_ticks=int(fields[11]),
                    stime_ticks=int(fields[12]))


#: Tag embedded in the argv of every default child the realnet LPM
#: spawns, so an orphan scan can recognise PPM-created processes after
#: the serve process that owned them is gone.
ORPHAN_MARKER = "repro-ppm-child"


def find_marked_orphans(marker: str = ORPHAN_MARKER) -> List[dict]:
    """PPM-created processes whose manager died.

    A process counts as orphaned when its command line carries the
    spawn ``marker`` and it has been reparented to init — exactly what
    a SIGKILLed serve process leaves behind: the managed children keep
    running with nobody administering them.
    """
    orphans: List[dict] = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        pid = int(entry)
        try:
            with open("/proc/%d/cmdline" % pid, "rb") as handle:
                cmdline = handle.read().replace(b"\0", b" ").decode(
                    "utf-8", "replace")
        except OSError:
            continue
        if marker not in cmdline:
            continue
        stat = read_stat(pid)
        if stat is None or stat.state == "exited":
            continue
        if stat.ppid == 1:
            orphans.append({"pid": pid, "command": stat.command,
                            "cmdline": cmdline.strip()})
    return orphans


def children_map() -> Dict[int, List[int]]:
    """Map every ppid -> child pids, from one /proc scan."""
    result: Dict[int, List[int]] = {}
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        stat = read_stat(int(entry))
        if stat is None:
            continue
        result.setdefault(stat.ppid, []).append(stat.pid)
    return result


def descendants(root_pid: int,
                child_index: Optional[Dict[int, List[int]]] = None
                ) -> List[int]:
    """All live descendants of ``root_pid`` (excluding the root)."""
    index = child_index if child_index is not None else children_map()
    seen: Set[int] = set()
    stack = list(index.get(root_pid, []))
    while stack:
        pid = stack.pop()
        if pid in seen:
            continue
        seen.add(pid)
        stack.extend(index.get(pid, []))
    return sorted(seen)
