"""Workload generators for the evaluation scenarios.

Table 1 needs hosts held inside specific run-queue-load bands; Table 3
needs "six user processes in each of the remote machines".
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.progspec import spinner_spec
from ..unixsim.programs import SpinnerProgram
from ..unixsim.signals import Signal


def raise_load_to_band(world, host, band: Tuple[float, float],
                       uid: int = 0) -> List[int]:
    """Spawn CPU spinners until the host's load average sits inside
    ``band = (lo, hi]`` and return their pids.

    The spinners are genuine RUNNING processes; the load average is the
    kernel's real exponentially damped run-queue estimator, so this
    reproduces the measurement conditions rather than pinning a number.
    """
    lo, hi = band
    count = max(int(round(hi)), 1)
    pids = [host.kernel.spawn(uid, "load-spinner",
                              program=SpinnerProgram(None)).pid
            for _ in range(count)]
    # With ``count`` spinners the load average rises asymptotically to
    # ``count`` = ``hi``; once past the band midpoint it stays inside
    # the band for the whole measurement window.  Time is advanced in
    # slices because the estimator evolves continuously, not on events.
    midpoint = (lo + hi) / 2.0
    deadline = world.sim.now_ms + 3_600_000.0
    while not midpoint <= host.kernel.loadavg.value() < hi:
        if world.sim.now_ms > deadline:
            raise RuntimeError("load never entered band (%s, %s]"
                               % (lo, hi))
        world.run_for(1_000.0)
    return pids


def clear_load(world, host, pids: List[int], uid: int = 0) -> None:
    """Kill the spinners and let the load decay back to idle."""
    for pid in pids:
        proc = host.kernel.procs.find(pid)
        if proc is not None and proc.alive:
            host.kernel.kill(pid, Signal.SIGKILL, sender_uid=uid)
    deadline = world.sim.now_ms + 3_600_000.0
    while host.kernel.loadavg.value() >= 0.2:
        if world.sim.now_ms > deadline:
            raise RuntimeError("load never decayed")
        world.run_for(1_000.0)


def measure_kernel_deliveries(world, host, lpm, target_pid: int,
                              band: Tuple[float, float],
                              samples: int = 20) -> List[float]:
    """Sample the kernel->LPM delivery time while the load average is
    inside ``band``.

    Each sample toggles the adopted target with SIGSTOP/SIGCONT, which
    makes the modified system calls post event messages to the LPM's
    kernel socket; the delivery delay is arrival time minus the posting
    timestamp carried in the message.
    """
    lo, hi = band
    kernel = host.kernel
    uid = lpm.uid
    delays: List[float] = []
    original_hook = kernel._lpm_hooks[uid]

    def wrapper(kmsg) -> None:
        delays.append(world.sim.now_ms - kmsg.timestamp_ms)
        original_hook(kmsg)

    kernel._lpm_hooks[uid] = wrapper
    try:
        while len(delays) < samples:
            if not (lo < kernel.loadavg.value() <= hi):
                raise RuntimeError(
                    "load left band (%s, %s]: la=%.2f"
                    % (lo, hi, kernel.loadavg.value()))
            before = len(delays)
            kernel.kill(target_pid, Signal.SIGSTOP, sender_uid=uid)
            world.run_until_true(lambda: len(delays) > before,
                                 timeout_ms=60_000.0)
            kernel.kill(target_pid, Signal.SIGCONT, sender_uid=uid)
            world.run_for(50.0)
    finally:
        kernel._lpm_hooks[uid] = original_hook
    return delays[:samples]


def populate_remote_processes(client, host: str, count: int = 6,
                              parent=None) -> list:
    """Create the paper's per-remote-host workload: ``count`` user
    processes on ``host`` (section 6 used six)."""
    return [client.create_process("proc-%s-%d" % (host, index), host=host,
                                  parent=parent,
                                  program=spinner_spec(None))
            for index in range(count)]
