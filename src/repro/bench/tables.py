"""Paper-versus-measured table rendering for the benchmark harness."""

from __future__ import annotations

import os
from typing import List, Optional

from ..util import format_table

#: Where the harness drops the regenerated tables.
RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))),
    "benchmarks", "results")


def comparison_table(title: str, rows: List[dict],
                     label: str = "case") -> str:
    """Render rows of ``{label, paper_ms, measured_ms}`` with the ratio."""
    body = []
    for row in rows:
        paper = row.get("paper_ms")
        measured = row["measured_ms"]
        if paper:
            ratio = "%.2f" % (measured / paper)
            paper_text = "%.1f" % (paper,)
        else:
            ratio = "-"
            paper_text = "-"
        body.append([row[label], paper_text, "%.1f" % (measured,), ratio])
    return format_table([label, "paper (ms)", "measured (ms)",
                         "measured/paper"], body, title=title)


def write_result(filename: str, content: str,
                 results_dir: Optional[str] = None) -> str:
    """Persist a regenerated table under ``benchmarks/results/``."""
    directory = results_dir or RESULTS_DIR
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, filename)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content if content.endswith("\n") else content + "\n")
    return path
