"""Benchmark support: workload generators, scenario builders, and the
paper-style table formatting used by the ``benchmarks/`` harness."""

from .workloads import (
    raise_load_to_band,
    measure_kernel_deliveries,
    populate_remote_processes,
)
from .scenarios import (
    Table2Chain,
    build_table1_world,
    build_table2_chain,
    build_figure5_topology,
    FIGURE5_TOPOLOGIES,
)
from .tables import comparison_table, write_result

__all__ = [
    "raise_load_to_band",
    "measure_kernel_deliveries",
    "populate_remote_processes",
    "Table2Chain",
    "build_table1_world",
    "build_table2_chain",
    "build_figure5_topology",
    "FIGURE5_TOPOLOGIES",
    "comparison_table",
    "write_result",
]
