"""Scenario builders for the paper's evaluation (Tables 1-3, Figure 5).

All scenarios run against real PPM sessions: LPMs bootstrapped through
inetd/pmd, channels authenticated, processes created and adopted.  The
builders perform the warm-ups the paper's methodology implies ("The
process creation time does not include the time to create the LPM or to
form a connection with it", section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..config import PPMConfig
from ..core.client import PPMClient
from ..core.lpm import install
from ..core.progspec import sleeper_spec, spinner_spec
from ..ids import GlobalPid
from ..latency import HostClass
from ..unixsim.world import World


def _fresh_world(host_specs, seed: int = 11,
                 config: PPMConfig = None) -> World:
    world = World(seed=seed, config=config or PPMConfig())
    for name, host_class in host_specs:
        world.add_host(name, host_class)
    world.ethernet()
    world.add_user("lfc", 1001)
    install(world)
    world.write_recovery_file("lfc", [host_specs[0][0]])
    return world


# ----------------------------------------------------------------------
# Table 1: the three measured host types
# ----------------------------------------------------------------------

#: The paper's Table 1 cells: host class -> band -> ms.
TABLE1_PAPER: Dict[HostClass, Dict[tuple, float]] = {
    HostClass.VAX_780: {(0, 1): 7.2, (1, 2): 9.8, (2, 3): 13.6},
    HostClass.VAX_750: {(0, 1): 7.2, (1, 2): 9.6, (2, 3): 12.8,
                        (3, 4): 18.9},
    HostClass.SUN_2: {(0, 1): 8.31, (1, 2): 14.13, (2, 3): 22.0,
                      (3, 4): 42.7},
}


def build_table1_world(host_class: HostClass, seed: int = 11):
    """One measured host plus its LPM and an adopted (sleeping) target
    process whose events exercise the kernel-socket path."""
    world = _fresh_world([("probe", host_class)], seed=seed)
    client = PPMClient(world, "lfc", "probe").connect()
    target = client.create_process("target", program=sleeper_spec(None))
    lpm = world.lpms[("probe", "lfc")]
    host = world.host("probe")
    world.run_for(1_000.0)
    return world, host, lpm, client, target


# ----------------------------------------------------------------------
# Table 2: process creation and control vs. topological distance
# ----------------------------------------------------------------------

#: The paper's Table 2 (ms); create one/two hops were N/A, but section 8
#: reports 177 ms for warm remote creation, which we measure as well.
TABLE2_PAPER = {
    ("create", "within"): 77.0,
    ("stop", "within"): 30.0,
    ("terminate", "within"): 30.0,
    ("create", "one-hop"): 177.0,   # from section 8, not the table
    ("stop", "one-hop"): 199.0,
    ("terminate", "one-hop"): 199.0,
    ("stop", "two-hop"): 210.0,
    ("terminate", "two-hop"): 210.0,
}


@dataclass
class Table2Chain:
    """A warmed A-B-C overlay chain for the Table 2 measurements."""

    world: World
    origin: PPMClient
    mid_client: PPMClient
    #: Long-lived processes at each topological distance.
    local: GlobalPid = None
    one_hop: GlobalPid = None
    two_hop: GlobalPid = None

    def fresh_target(self, distance: str) -> GlobalPid:
        """A new disposable process at the given distance, created
        through the already-warm channels."""
        if distance == "within":
            return self.origin.create_process("victim",
                                              program=spinner_spec(None))
        if distance == "one-hop":
            return self.origin.create_process("victim", host="hostB",
                                              program=spinner_spec(None))
        if distance == "two-hop":
            return self.mid_client.create_process(
                "victim", host="hostC", parent=self.one_hop,
                program=spinner_spec(None))
        raise ValueError(distance)


def build_table2_chain(seed: int = 11) -> Table2Chain:
    """Build and warm the chain: hostA - hostB - hostC in the overlay,
    with hostA never holding a direct channel to hostC."""
    world = _fresh_world([("hostA", HostClass.VAX_780),
                          ("hostB", HostClass.VAX_780),
                          ("hostC", HostClass.VAX_780)], seed=seed)
    origin = PPMClient(world, "lfc", "hostA").connect()
    chain = Table2Chain(world=world, origin=origin, mid_client=None)
    chain.local = origin.create_process("anchor-local",
                                        program=spinner_spec(None))
    chain.one_hop = origin.create_process("anchor-b", host="hostB",
                                          program=spinner_spec(None))
    chain.mid_client = PPMClient(world, "lfc", "hostB").connect()
    chain.two_hop = chain.mid_client.create_process(
        "anchor-c", host="hostC", parent=chain.one_hop,
        program=spinner_spec(None))
    # Teach hostA the two-hop route (a snapshot carries the paths) and
    # warm every handler on the paths.
    origin.snapshot()
    origin.stop(chain.two_hop)
    origin.cont(chain.two_hop)
    origin.stop(chain.one_hop)
    origin.cont(chain.one_hop)
    assert "hostC" not in world.lpms[("hostA", "lfc")].authenticated_siblings()
    return chain


# ----------------------------------------------------------------------
# Table 3 / Figure 5: the four snapshot topologies
# ----------------------------------------------------------------------

@dataclass
class Figure5Topology:
    """One of the four PPM topologies of Figure 5."""

    name: str
    description: str
    paper_ms: float
    #: overlay edges as (builder-client host, remote host) pairs; the
    #: order determines who opens which channel.
    edges: List[tuple] = field(default_factory=list)
    remote_hosts: List[str] = field(default_factory=list)


#: Topology definitions.  The origin is always hostA; every remote host
#: runs six user processes (section 6).  Elapsed times in the paper:
#: 205 / 225 / 461 / 507 ms.
FIGURE5_TOPOLOGIES: List[Figure5Topology] = [
    Figure5Topology(
        name="topology 1",
        description="origin and one remote host (one hop)",
        paper_ms=205.0,
        edges=[("hostA", "hostB")],
        remote_hosts=["hostB"]),
    Figure5Topology(
        name="topology 2",
        description="origin and two remote hosts (star)",
        paper_ms=225.0,
        edges=[("hostA", "hostB"), ("hostA", "hostC")],
        remote_hosts=["hostB", "hostC"]),
    Figure5Topology(
        name="topology 3",
        description="three remotes fanned out behind one intermediate",
        paper_ms=461.0,
        edges=[("hostA", "hostB"), ("hostB", "hostC"),
               ("hostB", "hostD")],
        remote_hosts=["hostB", "hostC", "hostD"]),
    Figure5Topology(
        name="topology 4",
        description="four remotes fanned out behind one intermediate",
        paper_ms=507.0,
        edges=[("hostA", "hostB"), ("hostB", "hostC"),
               ("hostB", "hostD"), ("hostB", "hostE")],
        remote_hosts=["hostB", "hostC", "hostD", "hostE"]),
]


def build_figure5_topology(topology: Figure5Topology, seed: int = 11,
                           processes_per_host: int = 6):
    """Instantiate one Figure-5 configuration: hosts, overlay edges in
    the prescribed shape, and six processes per remote host.  Returns
    ``(world, origin_client)`` with channels and handlers warmed."""
    hosts = ["hostA"] + list(topology.remote_hosts)
    world = _fresh_world([(name, HostClass.VAX_780) for name in hosts],
                         seed=seed)
    clients: Dict[str, PPMClient] = {
        "hostA": PPMClient(world, "lfc", "hostA").connect()}
    created: Dict[str, GlobalPid] = {}
    for src, dst in topology.edges:
        if src not in clients:
            clients[src] = PPMClient(world, "lfc", src).connect()
        parent = created.get(src)
        first = clients[src].create_process(
            "proc-%s-0" % dst, host=dst, parent=parent,
            program=spinner_spec(None))
        created.setdefault(dst, first)
        for index in range(1, processes_per_host):
            clients[src].create_process(
                "proc-%s-%d" % (dst, index), host=dst, parent=parent,
                program=spinner_spec(None))
    origin = clients["hostA"]
    # Verify the overlay has exactly the prescribed shape.
    expected = {frozenset(edge) for edge in topology.edges}
    actual = set()
    for (host, _user), lpm in world.lpms.items():
        for peer in lpm.authenticated_siblings():
            actual.add(frozenset((host, peer)))
    assert actual == expected, "overlay %s != expected %s" % (actual,
                                                              expected)
    # Warm-up: one full snapshot spins up every handler on the paths.
    origin.snapshot()
    return world, origin


def overlay_edges(world) -> List[tuple]:
    """The current authenticated sibling edges, for rendering."""
    edges = set()
    for (host, _user), lpm in world.lpms.items():
        if not lpm.alive:
            continue
        for peer in lpm.authenticated_siblings():
            edges.add(tuple(sorted((host, peer))))
    return sorted(edges)
