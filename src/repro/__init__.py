"""repro — a reproduction of the Berkeley Personal Process Manager.

"The Administration of Distributed Computations in a Networked
Environment: An Interim Report", Cabrera, Sechrest, Cáceres
(ICDCS 1986).

Quickstart::

    from repro import World, HostClass, PersonalProcessManager, spinner_spec

    world = World(seed=1)
    for name in ("ucbvax", "ucbarpa", "ucbernie"):
        world.add_host(name, HostClass.VAX_780)
    world.ethernet()
    world.add_user("lfc", 1001)

    ppm = PersonalProcessManager(world, "lfc", "ucbvax",
                                 recovery_hosts=["ucbvax", "ucbarpa"])
    ppm.start()
    gpid = ppm.create_process("simulate", host="ucbarpa",
                              program=spinner_spec(60_000.0))
    print(ppm.snapshot())

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-versus-measured results.
"""

from .config import DEFAULT_CONFIG, KERNEL_MESSAGE_BYTES, PPMConfig
from .errors import (
    AdoptionError,
    AuthenticationError,
    ConfigError,
    ConnectionClosedError,
    HostDownError,
    NoLPMError,
    NoSuchHostError,
    NoSuchProcessError,
    PPMError,
    ProcessPermissionError,
    RecoveryError,
    ReproError,
    RequestTimeoutError,
    SimulationError,
    UnreachableHostError,
)
from .ids import BroadcastId, GlobalPid, SessionId
from .netsim import CostModel, DEFAULT_COST_MODEL, HostClass, Simulator
from .unixsim import Host, Signal, World
from .core import (
    ControlAction,
    LocalProcessManager,
    Message,
    MsgKind,
    PersonalProcessManager,
    PPMClient,
    ProcessRecord,
    ResilientComputation,
    SnapshotForest,
    UnitSpec,
    build_program,
    file_worker_spec,
    fork_tree_spec,
    install,
    sleeper_spec,
    spinner_spec,
    worker_spec,
)
from .tracing import (
    Granularity,
    HistoryStore,
    TraceEvent,
    TraceEventType,
    TraceRecorder,
    Trigger,
    TriggerEngine,
)

__version__ = "1.0.0"

__all__ = [
    "PPMConfig",
    "DEFAULT_CONFIG",
    "KERNEL_MESSAGE_BYTES",
    "ReproError",
    "ConfigError",
    "SimulationError",
    "NoSuchHostError",
    "HostDownError",
    "UnreachableHostError",
    "ConnectionClosedError",
    "NoSuchProcessError",
    "ProcessPermissionError",
    "AdoptionError",
    "AuthenticationError",
    "PPMError",
    "NoLPMError",
    "RequestTimeoutError",
    "RecoveryError",
    "GlobalPid",
    "BroadcastId",
    "SessionId",
    "Simulator",
    "HostClass",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "World",
    "Host",
    "Signal",
    "Message",
    "MsgKind",
    "LocalProcessManager",
    "install",
    "ProcessRecord",
    "SnapshotForest",
    "ControlAction",
    "PPMClient",
    "PersonalProcessManager",
    "build_program",
    "spinner_spec",
    "sleeper_spec",
    "worker_spec",
    "file_worker_spec",
    "fork_tree_spec",
    "ResilientComputation",
    "UnitSpec",
    "TraceEvent",
    "TraceEventType",
    "Granularity",
    "TraceRecorder",
    "HistoryStore",
    "Trigger",
    "TriggerEngine",
]
