"""Fixed-capacity time series over the counter and histogram layers.

The flat counters (:mod:`repro.perf.counters`) answer "how much work
has happened"; the histograms (:mod:`repro.perf.histogram`) answer
"how slow is it".  Neither answers the question a *continuous* watch
loop needs: "is it getting worse?".  This module adds that third
shape — per-metric ring buffers sampled once per probe tick, with
windowed derivative queries — so "retransmissions are *rising*" is an
answerable question, not just "retransmissions are high".

Design constraints, in the spirit of the counter layer:

* **Bounded memory.**  Every series is a fixed-capacity ring
  (:class:`RingSeries`); a watch loop that runs for a week holds the
  same bytes as one that ran for a minute.  Old samples roll off.
* **Sampling is read-only.**  A sample is a snapshot read of ``PERF``
  plus (optionally) the tracer's ``latency_summary()``; nothing is
  scheduled, no RNG is touched, no state outside the sampler mutates —
  the same contract the doctor's probes keep (``docs/OPERATIONS.md``).
* **Derived numbers stay derived.**  The counters never store rates;
  neither do the rings.  ``rate_per_s`` / ``delta_since`` / ``ewma``
  are computed from raw samples at query time.

:class:`MetricsSampler` is the convenience wiring the watch loop uses:
one ``sample(now_ms)`` call per sweep snapshots every counter (and any
histogram p99s) into named series.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .counters import PERF

#: Default samples retained per series (one hour of ticks at one sweep
#: every 14 s; ~100 series of floats stay well under a megabyte).
DEFAULT_CAPACITY = 256


class RingSeries:
    """One metric's fixed-capacity ``(t_ms, value)`` sample ring."""

    __slots__ = ("name", "_samples")

    def __init__(self, name: str,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        self.name = name
        self._samples: deque = deque(maxlen=capacity)

    # -- recording -------------------------------------------------------

    def append(self, t_ms: float, value: float) -> None:
        """Record one sample; the oldest rolls off at capacity."""
        self._samples.append((t_ms, value))

    # -- inspection ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def capacity(self) -> int:
        return self._samples.maxlen

    def samples(self) -> List[Tuple[float, float]]:
        """The retained ``(t_ms, value)`` pairs, oldest first."""
        return list(self._samples)

    def latest(self) -> Optional[Tuple[float, float]]:
        return self._samples[-1] if self._samples else None

    # -- windowed queries ------------------------------------------------

    def _anchor(self, since_ms: Optional[float]) -> Optional[Tuple[float, float]]:
        """The sample the window starts from: the newest one at or
        before ``since_ms``, falling back to the oldest retained when
        the window reaches past the ring."""
        if not self._samples:
            return None
        if since_ms is None:
            return self._samples[0]
        anchor = None
        for t_ms, value in self._samples:
            if t_ms > since_ms:
                break
            anchor = (t_ms, value)
        return anchor if anchor is not None else self._samples[0]

    def delta_since(self, since_ms: Optional[float] = None
                    ) -> Optional[float]:
        """Latest value minus the value at the window anchor.

        ``since_ms=None`` spans the whole retained ring.  Returns None
        until two samples exist (a delta needs a before and an after).
        """
        if len(self._samples) < 2:
            return None
        anchor = self._anchor(since_ms)
        latest = self._samples[-1]
        if anchor is latest:
            return None
        return latest[1] - anchor[1]

    def rate_per_s(self, window_ms: Optional[float] = None
                   ) -> Optional[float]:
        """Average change per second over the window (monotonic
        counters: events/second; gauges: slope).  Returns None until
        two distinct-time samples exist in the window."""
        if len(self._samples) < 2:
            return None
        latest_t, latest_v = self._samples[-1]
        since_ms = None if window_ms is None else latest_t - window_ms
        anchor = self._anchor(since_ms)
        if anchor is None:
            return None
        anchor_t, anchor_v = anchor
        span_ms = latest_t - anchor_t
        if span_ms <= 0.0:
            return None
        return (latest_v - anchor_v) / span_ms * 1000.0

    def ewma(self, alpha: float = 0.3) -> Optional[float]:
        """Exponentially weighted moving average of the retained
        values, oldest to newest (``alpha`` weights the newer sample).
        Returns None while the ring is empty."""
        if not self._samples:
            return None
        average: Optional[float] = None
        for _, value in self._samples:
            average = value if average is None else \
                alpha * value + (1.0 - alpha) * average
        return average


class MetricsSampler:
    """Snapshot ``PERF`` (and histogram p99s) into ring series per tick.

    One instance belongs to one watch loop.  ``counters`` narrows the
    sampled set (default: every ``PerfCounters`` slot); histogram
    series appear as ``<op>_p99_ms`` as soon as the tracer's summary
    carries a non-None p99 for the operation class.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 counters: Optional[Sequence[str]] = None) -> None:
        self.capacity = capacity
        self._counters: Tuple[str, ...] = tuple(
            counters if counters is not None else PERF.snapshot())
        self.series: Dict[str, RingSeries] = {}

    def _series(self, name: str) -> RingSeries:
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = RingSeries(
                name, capacity=self.capacity)
        return series

    def sample(self, now_ms: float,
               latency: Optional[Dict[str, dict]] = None) -> None:
        """Record one tick: every tracked counter, plus any histogram
        p99s in ``latency`` (a ``tracer.latency_summary()`` dict)."""
        PERF.watch_samples += 1
        snapshot = PERF.snapshot()
        for name in self._counters:
            self._series(name).append(now_ms, snapshot[name])
        for op, block in (latency or {}).items():
            p99 = block.get("p99_ms")
            if p99 is not None:
                self._series("%s_p99_ms" % op).append(now_ms, p99)

    # -- convenience queries ---------------------------------------------

    def rate_per_s(self, name: str,
                   window_ms: Optional[float] = None) -> Optional[float]:
        series = self.series.get(name)
        return series.rate_per_s(window_ms) if series is not None else None

    def delta_since(self, name: str,
                    since_ms: Optional[float] = None) -> Optional[float]:
        series = self.series.get(name)
        return series.delta_since(since_ms) if series is not None else None

    def ewma(self, name: str, alpha: float = 0.3) -> Optional[float]:
        series = self.series.get(name)
        return series.ewma(alpha) if series is not None else None

    def rising(self, names: Iterable[str],
               window_ms: Optional[float] = None) -> Dict[str, float]:
        """The subset of ``names`` with a positive rate over the
        window — the "what is getting worse" one-liner watch prints."""
        out: Dict[str, float] = {}
        for name in names:
            rate = self.rate_per_s(name, window_ms)
            if rate is not None and rate > 0.0:
                out[name] = rate
        return out
