"""Chrome trace-event JSON export for span traces.

Converts a :class:`~repro.perf.spans.SpanTracer`'s retained spans into
the Chrome trace-event format (the ``{"traceEvents": [...]}`` JSON
object understood by Perfetto, ``chrome://tracing``, and Speedscope).
The mapping:

* one trace-event *process* per simulated host (``process_name``
  metadata carries the host name),
* one *thread* lane per span category on that host (tool / serve /
  rpc / gather / broadcast / route / xport), named via ``thread_name``
  metadata,
* timed spans become complete (``"ph": "X"``) events, instants become
  thread-scoped instant (``"ph": "i"``) events,
* timestamps are simulated microseconds (the format's native unit);
  span/trace/parent ids ride in ``args`` so causality survives into
  the viewer's query panel.

Load the file at https://ui.perfetto.dev — see ``docs/OBSERVABILITY.md``
for a walkthrough.
"""

from __future__ import annotations

import json
from typing import Dict, List

#: Stable lane order per host; unknown categories land after these.
_CATEGORY_LANES = ("tool", "serve", "rpc", "gather", "broadcast",
                   "route", "xport")


def _lane_of(cat: str) -> int:
    try:
        return _CATEGORY_LANES.index(cat) + 1
    except ValueError:
        return len(_CATEGORY_LANES) + 1


def chrome_trace_events(tracer) -> List[dict]:
    """The ``traceEvents`` list for a tracer's retained spans."""
    pid_of: Dict[str, int] = {host: index + 1
                              for index, host in enumerate(tracer.hosts())}
    events: List[dict] = []
    lanes_seen = set()
    for host, pid in sorted(pid_of.items()):
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": 0, "args": {"name": host}})
    for span in tracer.spans:
        pid = pid_of[span.host]
        tid = _lane_of(span.cat)
        if (pid, tid) not in lanes_seen:
            lanes_seen.add((pid, tid))
            events.append({"ph": "M", "name": "thread_name", "pid": pid,
                           "tid": tid, "args": {"name": span.cat}})
        args = dict(span.args or ())
        args["trace_id"] = span.trace_id
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        event = {"name": span.name, "cat": span.cat, "pid": pid,
                 "tid": tid, "ts": round(span.start_ms * 1000.0, 3),
                 "args": args}
        if span.instant:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            end_ms = span.end_ms if span.end_ms is not None \
                else tracer.sim.now_ms
            event["dur"] = round((end_ms - span.start_ms) * 1000.0, 3)
        events.append(event)
    return events


def chrome_trace(tracer) -> dict:
    """The full JSON-object form of the trace."""
    return {"traceEvents": chrome_trace_events(tracer),
            "displayTimeUnit": "ms",
            "otherData": {"clock": "simulated",
                          "spans_dropped": tracer.dropped}}


def write_chrome_trace(tracer, path: str) -> int:
    """Write the trace JSON to ``path``; returns the event count."""
    trace = chrome_trace(tracer)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=None, separators=(",", ":"),
                  sort_keys=True)
        handle.write("\n")
    return len(trace["traceEvents"])
