"""Causal span tracing for the system itself.

Where :mod:`repro.tracing` records the *paper-level* history (forks,
exits, kernel messages — the events the PPM's users analyse), this
module observes the *reproduction's own* machinery: one tool request
becomes a single trace whose child spans cover the RPC round-trip, the
hop-by-hop forwarding, the broadcast fan-out with its dedup decisions,
the gather merges, and the transport sends — all timestamped in
**simulated** time.

Causality is carried by a span context ``[trace_id, span_id]``: a
:class:`Span` started with a parent context joins that trace, and
protocol messages propagate the context across hosts in the optional
``Message.trace`` field (omitted from the wire encoding when tracing is
off, so disabled runs stay byte-identical — see
:mod:`repro.core.wire`).

The tracer hangs off the :class:`~repro.netsim.simulator.Simulator`
(``sim.tracer``, None by default).  Every instrumentation point guards
with ``if sim.tracer is not None`` and does nothing else when tracing
is disabled: no allocation, no message growth, no RNG use, no event
scheduling.  When enabled, recording is pure bookkeeping — it never
schedules events or perturbs the RNG stream, so a traced run is still
deterministic (its simulated timings differ from an untraced run only
because the span context genuinely rides the wire and is charged
bytes).

On top of raw spans the tracer keeps fixed-bucket latency histograms
(:mod:`repro.perf.histogram`) for the key operation classes:

``rpc_rtt``
    Request send to reply arrival (or timeout/failure), per request.
``broadcast_settle``
    LOCATE broadcast start to first answer (or timeout).
``gather_complete``
    Gather start to the merged reply, per gather level.
``stream_lag``
    Stream-segment send to delivery (queueing + wire + in-order floor).
``tool_call``
    Tool request to reply as the subroutine library sees it.

Export the collected spans with :mod:`repro.perf.chrometrace` and load
the JSON in Perfetto (https://ui.perfetto.dev) — one process row per
simulated host.  See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .counters import PERF
from .histogram import LatencyHistogram

#: The histogram operation classes (fixed: a typo'd op is a KeyError).
OP_CLASSES = ("rpc_rtt", "broadcast_settle", "gather_complete",
              "stream_lag", "tool_call")

#: Bound on retained spans: one span is a few hundred bytes, so the
#: default cap holds a long session while bounding a runaway trace.
DEFAULT_MAX_SPANS = 200_000


class Span:
    """One timed operation in a trace.

    ``parent_id`` is None only for trace roots; ``end_ms`` is None
    while the span is open.  ``instant`` marks zero-duration point
    events (a forwarding hop, a transport send, a dedup decision).
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "cat",
                 "host", "start_ms", "end_ms", "args", "instant")

    def __init__(self, trace_id: int, span_id: int,
                 parent_id: Optional[int], name: str, cat: str,
                 host: str, start_ms: float,
                 args: Optional[dict] = None) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.cat = cat
        self.host = host
        self.start_ms = start_ms
        self.end_ms: Optional[float] = None
        self.args = args
        self.instant = False

    def ctx(self) -> List[int]:
        """The propagatable span context (JSON-friendly)."""
        return [self.trace_id, self.span_id]

    @property
    def duration_ms(self) -> Optional[float]:
        if self.end_ms is None:
            return None
        return self.end_ms - self.start_ms

    def __repr__(self) -> str:
        return "Span(%s#%d/%d %s@%s %.3f..%s)" % (
            self.name, self.trace_id, self.span_id, self.cat, self.host,
            self.start_ms,
            "open" if self.end_ms is None else "%.3f" % self.end_ms)


class SpanTracer:
    """Collects spans and latency histograms for one simulator.

    Timestamps come from the simulator clock, so spans measure
    *simulated* time.  Finished spans (and instants) are retained up to
    ``max_spans``; overflow increments ``dropped`` instead of growing
    without bound.
    """

    def __init__(self, sim, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self.sim = sim
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped = 0
        self._next_trace = 0
        self._next_span = 0
        self.histograms: Dict[str, LatencyHistogram] = {
            op: LatencyHistogram() for op in OP_CLASSES}

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------

    def start(self, name: str, host: str, parent=None, cat: str = "op",
              **args) -> Span:
        """Open a span at the current simulated time.

        ``parent`` is a span context (``[trace_id, span_id]``, e.g.
        from ``Span.ctx()`` or ``Message.trace``); None starts a new
        trace with this span as its root.
        """
        PERF.spans_started += 1
        if parent is not None:
            trace_id, parent_id = int(parent[0]), int(parent[1])
        else:
            self._next_trace += 1
            trace_id, parent_id = self._next_trace, None
        self._next_span += 1
        return Span(trace_id, self._next_span, parent_id, name, cat,
                    host, self.sim.now_ms, args or None)

    def finish(self, span: Span, op: Optional[str] = None,
               **args) -> float:
        """Close a span at the current simulated time and retain it.

        ``op`` optionally records the span's duration into the named
        latency histogram.  Returns the duration in simulated ms.
        """
        PERF.spans_finished += 1
        span.end_ms = self.sim.now_ms
        if args:
            span.args = dict(span.args or (), **args)
        self._keep(span)
        duration = span.end_ms - span.start_ms
        if op is not None:
            self.record(op, duration)
        return duration

    def instant(self, name: str, host: str, parent=None,
                cat: str = "op", **args) -> Span:
        """Record a zero-duration point event (hop, send, dedup drop)."""
        span = self.start(name, host, parent=parent, cat=cat, **args)
        PERF.spans_finished += 1
        span.end_ms = span.start_ms
        span.instant = True
        self._keep(span)
        return span

    def _keep(self, span: Span) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(span)

    # ------------------------------------------------------------------
    # Histograms
    # ------------------------------------------------------------------

    def record(self, op: str, value_ms: float) -> None:
        """Add one duration to the named operation-class histogram."""
        PERF.histogram_records += 1
        self.histograms[op].record(value_ms)

    def latency_summary(self) -> Dict[str, dict]:
        """Per-operation-class count / mean / extrema / p50 / p95 / p99."""
        return {op: hist.summary() for op, hist in self.histograms.items()}

    # ------------------------------------------------------------------
    # Queries (tests and exporters)
    # ------------------------------------------------------------------

    def traces(self) -> Dict[int, List[Span]]:
        """Retained spans grouped by trace id."""
        grouped: Dict[int, List[Span]] = {}
        for span in self.spans:
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def hosts(self) -> List[str]:
        return sorted({span.host for span in self.spans})

    def __repr__(self) -> str:
        return "SpanTracer(spans=%d, dropped=%d)" % (len(self.spans),
                                                     self.dropped)


def enable_tracing(sim, max_spans: int = DEFAULT_MAX_SPANS) -> SpanTracer:
    """Attach a fresh tracer to a simulator and return it."""
    tracer = SpanTracer(sim, max_spans=max_spans)
    sim.tracer = tracer
    return tracer


def disable_tracing(sim) -> None:
    """Detach any tracer; the instrumentation reverts to zero-cost."""
    sim.tracer = None
