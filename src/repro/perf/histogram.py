"""Fixed-bucket latency histograms for the span-tracing layer.

A :class:`LatencyHistogram` accumulates simulated-millisecond durations
into a fixed geometric bucket ladder (no allocation per record, stable
memory regardless of sample count) and answers percentile queries by
walking the cumulative counts.  Percentiles are bucket-resolution
estimates: the reported value is the upper bound of the bucket the
requested rank falls into, clamped to the exact observed maximum so a
p99 can never exceed the slowest sample actually seen.

The bucket ladder spans 0.1 ms to ~200 s doubling each step — wide
enough for every operation class in the simulator (tool IPC is
sub-millisecond; a 40-host gather settles in seconds) while keeping the
ladder at 22 buckets plus one overflow slot.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional

#: Upper bounds (ms) of the fixed bucket ladder; one overflow bucket
#: follows the last bound.
BUCKET_BOUNDS_MS = tuple(0.1 * (2.0 ** i) for i in range(22))


class LatencyHistogram:
    """Counts of durations per fixed bucket, plus exact extrema."""

    __slots__ = ("counts", "count", "sum_ms", "min_ms", "max_ms")

    def __init__(self) -> None:
        self.counts: List[int] = [0] * (len(BUCKET_BOUNDS_MS) + 1)
        self.count = 0
        self.sum_ms = 0.0
        self.min_ms: Optional[float] = None
        self.max_ms: Optional[float] = None

    def record(self, value_ms: float) -> None:
        """Add one duration (negative values clamp to zero)."""
        if value_ms < 0.0:
            value_ms = 0.0
        self.counts[bisect_left(BUCKET_BOUNDS_MS, value_ms)] += 1
        self.count += 1
        self.sum_ms += value_ms
        if self.min_ms is None or value_ms < self.min_ms:
            self.min_ms = value_ms
        if self.max_ms is None or value_ms > self.max_ms:
            self.max_ms = value_ms

    def percentile(self, q: float) -> Optional[float]:
        """Bucket-resolution estimate of the ``q`` quantile (0 < q <= 1).

        Returns None when the histogram is empty.  The estimate is the
        upper bound of the bucket holding the requested rank, clamped
        to the observed extrema.
        """
        if self.count == 0:
            return None
        target = max(1, int(q * self.count + 0.999999))
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target:
                if index >= len(BUCKET_BOUNDS_MS):
                    return self.max_ms
                bound = BUCKET_BOUNDS_MS[index]
                if self.max_ms is not None and bound > self.max_ms:
                    return self.max_ms
                if self.min_ms is not None and bound < self.min_ms:
                    return self.min_ms
                return bound
        return self.max_ms  # pragma: no cover — cumulative covers count

    def summary(self) -> dict:
        """The stats block ``perf_stats()`` and ``repro stats`` print."""
        if self.count == 0:
            return {"count": 0, "mean_ms": None, "min_ms": None,
                    "max_ms": None, "p50_ms": None, "p95_ms": None,
                    "p99_ms": None}
        return {
            "count": self.count,
            "mean_ms": round(self.sum_ms / self.count, 3),
            "min_ms": round(self.min_ms, 3),
            "max_ms": round(self.max_ms, 3),
            "p50_ms": round(self.percentile(0.50), 3),
            "p95_ms": round(self.percentile(0.95), 3),
            "p99_ms": round(self.percentile(0.99), 3),
        }

    def __repr__(self) -> str:
        return "LatencyHistogram(count=%d, sum=%.3f ms)" % (self.count,
                                                            self.sum_ms)
