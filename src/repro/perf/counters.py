"""The counter registry.

One slotted object holds every counter; incrementing an attribute on it
is the cheapest always-on instrumentation Python offers short of doing
nothing.  Counters only ever count *work* (things that happened), never
derived rates — derived numbers belong to whoever reads a snapshot.

Counter inventory
-----------------

Wire layer (``repro.core.wire``, ``repro.ids``):

``encodes_performed``
    Full canonical JSON serialisations actually executed.
``encode_cache_hits``
    Serialisations avoided because the message's cached encoding was
    still valid (same route fingerprint).
``size_calls``
    Calls to :func:`repro.core.wire.message_size_bytes`.
``bytes_charged``
    Total bytes the network was told to charge via
    :func:`message_size_bytes` results.
``hmac_computed``
    Broadcast-stamp signature computations (SHA-256 runs).
``hmac_cache_hits``
    Stamp verifications answered from the ``(key, signature, secret)``
    cache without re-hashing.

Broadcast dedup (``repro.core.broadcast``):

``dedup_checks``
    Calls to ``BroadcastEngine.should_accept``.
``dedup_entries_scanned``
    Seen-set entries examined while expiring old stamps.  Before the
    expiry-deque this was the whole seen-set per check; now it is only
    the entries that actually expired (plus one peek).
``dedup_entries_expired``
    Entries dropped because their retention window passed.

Event queue (``repro.netsim``):

``events_scheduled``
    Events pushed onto any event queue (the per-event scheduling cost
    the stream batching exists to avoid).
``events_run``
    Events executed by any simulator in this process.
``events_cancelled``
    Events cancelled before firing.
``events_fastpath``
    Events appended through the in-order fast path instead of a heap
    push.
``heap_compactions``
    Times an event queue rebuilt itself to shed cancelled entries.

Stream delivery batching (``repro.netsim.stream``):

``stream_batched_deliveries``
    Delivery-timer fires; each fire drains every in-flight segment of
    one circuit direction whose arrival time has been reached.
``stream_segments_drained``
    Segments drained across all those fires (delivered or suppressed).
    ``stream_segments_drained / stream_batched_deliveries`` is the
    average batch size — the event-volume win over the old
    one-event-per-segment scheduler.
``stream_timer_rearms``
    Fires that re-armed the direction's timer because segments with a
    later arrival time remained queued.

Exactly-once request layer (``repro.core.rpc``):

``requests_retransmitted``
    Datagram-transport requests re-sent by the LPM layer after the ARQ
    gave up or a reply went missing.
``requests_deduplicated``
    Duplicate requests absorbed by the server-side exactly-once cache.

Gather merge (``repro.core.gather``):

``gather_merges``
    Gather operations finished (one k-way merge each).
``gather_records_merged``
    Records emitted by those merges (each record is touched once per
    gather level, the linear-merge property).

Routing (``repro.core.routing``):

``route_invalidation_scans``
    Route entries examined while invalidating after a link loss.  With
    the via-host index this counts only routes actually through the
    lost peer; the old full-cache scan examined every cached route.

Broadcast trees (``repro.core.spantree``):

``tree_forwards``
    Broadcast copies sent along established tree edges (tree-mode
    forwards).  Steady-state tree broadcasts cost about ``n - 1`` of
    these instead of one flood copy per overlay edge.
``tree_prunes``
    Candidate children struck off a tree after duplicate-drop
    feedback (``TREE_PRUNE`` notices honoured).
``tree_repairs``
    ``TREE_REPAIR`` notices processed while a severed or stateless
    tree climbed back to its source for a rebuilding flood.

Cache-first LOCATE (``repro.core.lpm`` / ``repro.core.router``):

``locate_cache_hits``
    LOCATE requests answered without flooding: a unicast probe along
    a cached route confirmed the process, or the negative miss cache
    answered a recently failed lookup.
``locate_cache_stale``
    Cached-route LOCATE probes that failed (stale route or moved
    process), forcing the broadcast-flood fallback.

Shared circuits (``repro.core.circuitpool``):

``circuit_shares``
    Lane attachments that reused an existing (or in-flight) physical
    circuit instead of dialing a new one — the multi-tenant link win.
``circuit_lanes_attached``
    Per-user lane endpoints created on shared circuits (both the
    dialing and the accepting side count theirs).

pmd authentication (``repro.unixsim.pmd``):

``auth_cache_hits``
    Bootstrap authentications answered from the incarnation-keyed
    cache instead of re-running the rhosts/registry checks — the
    login-wave hot path.

Lockstep sharding (``repro.netsim.shard``):

``shard_windows``
    Lockstep windows synchronised across the worker fleet (counted once
    per barrier round, on shard 0).  Windows skipped by the
    coordinator's fast-forward never appear here.
``cross_shard_msgs``
    Delivery descriptors shipped between shard workers (stream
    segments, datagrams, circuit setups, teardowns, drop-notice
    settles).
``barrier_waits``
    Blocking waits on the coordinator, per worker (barrier rounds plus
    reduction ops); the synchronisation overhead a sharded run pays.

Load average (``repro.unixsim.loadavg``):

``loadavg_idle_skips``
    Lazy integrations skipped because the average already equals the
    runnable count (idle or fully-converged hosts), avoiding an exp().

Real network backend (``repro.realnet``):

``real_frames_sent``
    Length-prefixed frames written to real TCP sockets (messages plus
    control frames).
``real_frames_received``
    Complete frames decoded off real TCP sockets.
``real_partial_reads``
    Socket reads that ended mid-frame, leaving bytes buffered in the
    frame decoder until the rest arrived (torn reads).
``real_connects``
    Outbound TCP connections opened by the realnet fabric (bootstrap,
    tool, and sibling channels).

Operational surface (``repro.ops``):

``doctor_runs``
    Doctor reports assembled (:func:`repro.ops.doctor.run_doctor`
    invocations, across both backends).
``doctor_checks_failed``
    Individual check failures across those reports (one report with
    three failing checks counts three).
``ops_alerts_raised``
    Operational-trigger firings latched onto an alert log (the
    prebuilt ``ops:*`` triggers' default action).

Continuous watch (``repro.ops.watch``, ``repro.perf.timeseries``):

``watch_sweeps``
    Probe sweeps a watch loop fed through its edge detector
    (:meth:`repro.ops.watch.Watcher.feed` calls, across both
    backends).
``watch_edges``
    Onset/clear transitions the watch loop detected and journalled
    (each incident contributes one onset and, once recovered, one
    clear).
``watch_samples``
    Time-series sampling ticks (:meth:`MetricsSampler.sample` calls —
    one per sweep when a sampler is attached).

Span tracing (``repro.perf.spans``):

``spans_started``
    Spans opened (including instants) while a tracer was attached.
``spans_finished``
    Spans closed and retained (or dropped at the retention cap).
``histogram_records``
    Durations recorded into the operation-class latency histograms
    (rpc round-trip, broadcast settle, gather completion, stream
    delivery lag, tool calls).
"""

from __future__ import annotations

_COUNTERS = (
    "encodes_performed",
    "encode_cache_hits",
    "size_calls",
    "bytes_charged",
    "hmac_computed",
    "hmac_cache_hits",
    "dedup_checks",
    "dedup_entries_scanned",
    "dedup_entries_expired",
    "events_scheduled",
    "events_run",
    "events_cancelled",
    "events_fastpath",
    "heap_compactions",
    "stream_batched_deliveries",
    "stream_segments_drained",
    "stream_timer_rearms",
    "requests_retransmitted",
    "requests_deduplicated",
    "gather_merges",
    "gather_records_merged",
    "route_invalidation_scans",
    "tree_forwards",
    "tree_prunes",
    "tree_repairs",
    "locate_cache_hits",
    "locate_cache_stale",
    "circuit_shares",
    "circuit_lanes_attached",
    "auth_cache_hits",
    "shard_windows",
    "cross_shard_msgs",
    "barrier_waits",
    "loadavg_idle_skips",
    "real_frames_sent",
    "real_frames_received",
    "real_partial_reads",
    "real_connects",
    "doctor_runs",
    "doctor_checks_failed",
    "ops_alerts_raised",
    "watch_sweeps",
    "watch_edges",
    "watch_samples",
    "spans_started",
    "spans_finished",
    "histogram_records",
)


class PerfCounters:
    """A bag of process-wide monotonic counters."""

    __slots__ = _COUNTERS

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for name in _COUNTERS:
            setattr(self, name, 0)

    def snapshot(self) -> dict:
        """The current values as a plain dict (stable key order)."""
        return {name: getattr(self, name) for name in _COUNTERS}

    def delta_since(self, baseline: dict) -> dict:
        """Counter increments since a previous :meth:`snapshot`."""
        return {name: getattr(self, name) - baseline.get(name, 0)
                for name in _COUNTERS}

    def __repr__(self) -> str:
        busy = ["%s=%d" % (name, getattr(self, name))
                for name in _COUNTERS if getattr(self, name)]
        return "PerfCounters(%s)" % (", ".join(busy) or "all zero",)


#: The process-wide singleton every instrumented module charges.
PERF = PerfCounters()
