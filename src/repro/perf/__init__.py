"""Always-on performance counters for the hot paths.

The counters are process-global and cheap (plain integer adds on a
slotted singleton), so the instrumented code — message encoding, the
broadcast dedup engine, the event queue — can charge them
unconditionally.  ``repro.perf.PERF`` is the singleton; every counter
is documented in :mod:`repro.perf.counters` and in ``docs/PERF.md``.

The ``benchmarks/perf`` runner resets the counters around each
microbenchmark and records the deltas in ``BENCH_core.json`` so the
repository carries a perf trajectory from PR to PR.
"""

from .counters import PERF, PerfCounters

__all__ = ["PERF", "PerfCounters"]
