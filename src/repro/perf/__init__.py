"""Always-on performance counters for the hot paths.

The counters are process-global and cheap (plain integer adds on a
slotted singleton), so the instrumented code — message encoding, the
broadcast dedup engine, the event queue — can charge them
unconditionally.  ``repro.perf.PERF`` is the singleton; every counter
is documented in :mod:`repro.perf.counters` and in ``docs/PERF.md``.

The ``benchmarks/perf`` runner resets the counters around each
microbenchmark and records the deltas in ``BENCH_core.json`` so the
repository carries a perf trajectory from PR to PR.

Beyond flat counters, :mod:`repro.perf.spans` adds opt-in causal span
tracing (simulated-time spans with latency histograms, exported to
Chrome trace-event JSON by :mod:`repro.perf.chrometrace`) — see
``docs/OBSERVABILITY.md``.
"""

from .chrometrace import chrome_trace, chrome_trace_events, write_chrome_trace
from .counters import PERF, PerfCounters
from .histogram import BUCKET_BOUNDS_MS, LatencyHistogram
from .spans import (OP_CLASSES, Span, SpanTracer, disable_tracing,
                    enable_tracing)
from .timeseries import DEFAULT_CAPACITY, MetricsSampler, RingSeries

__all__ = [
    "PERF", "PerfCounters",
    "BUCKET_BOUNDS_MS", "LatencyHistogram",
    "OP_CLASSES", "Span", "SpanTracer", "enable_tracing",
    "disable_tracing",
    "chrome_trace", "chrome_trace_events", "write_chrome_trace",
    "DEFAULT_CAPACITY", "MetricsSampler", "RingSeries",
]
