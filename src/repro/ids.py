"""Identities used across the PPM.

The paper identifies processes in the network by ``<host name, pid>``
(section 6, figure 5).  Broadcast duplicate suppression uses a *signed
timestamp in which the name of the originating host appears* (section 4);
:class:`BroadcastId` models that stamp.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from .errors import ReproError
from .perf import PERF


@dataclass(frozen=True, order=True)
class GlobalPid:
    """A network-wide process identity, ``<host name, pid>``."""

    host: str
    pid: int

    def __str__(self) -> str:
        return "<%s,%d>" % (self.host, self.pid)

    @classmethod
    def parse(cls, text: str) -> "GlobalPid":
        """Parse the ``<host,pid>`` rendering back into a :class:`GlobalPid`."""
        stripped = text.strip()
        if not (stripped.startswith("<") and stripped.endswith(">")):
            raise ReproError("not a global pid: %r" % (text,))
        body = stripped[1:-1]
        host, sep, pid_text = body.rpartition(",")
        if not sep or not host:
            raise ReproError("not a global pid: %r" % (text,))
        try:
            pid = int(pid_text)
        except ValueError:
            raise ReproError("not a global pid: %r" % (text,)) from None
        return cls(host=host, pid=pid)


def _sign(origin: str, timestamp_ms: float, seq: int, secret: str) -> str:
    digest = hashlib.sha256(
        ("%s|%.6f|%d|%s" % (origin, timestamp_ms, seq, secret)).encode("utf-8")
    )
    return digest.hexdigest()[:16]


#: Signature-verification memo.  Keyed on every field of the stamp PLUS
#: the claimed signature and the secret, so a forged stamp that shares
#: ``key()`` with a genuine one can never hit a cached True.  Bounded so
#: adversarial traffic cannot grow it without limit.
_VERIFY_CACHE: dict = {}
_VERIFY_CACHE_MAX = 4096


@dataclass(frozen=True)
class BroadcastId:
    """A signed timestamp naming the originating host (section 4).

    LPMs keep recently seen :class:`BroadcastId` values for a configurable
    time window so that old broadcast requests are not retransmitted.  The
    signature lets a receiver check that the stamp was produced by the
    origin's LPM (we model the per-session secret the LPMs share after
    authentication).
    """

    origin: str
    timestamp_ms: float
    seq: int
    signature: str = ""

    @classmethod
    def make(cls, origin: str, timestamp_ms: float, seq: int,
             secret: str) -> "BroadcastId":
        return cls(origin=origin, timestamp_ms=timestamp_ms, seq=seq,
                   signature=_sign(origin, timestamp_ms, seq, secret))

    def verify(self, secret: str) -> bool:
        """Check the signature against the session secret.

        Flooding presents the same stamp to every LPM on every hop;
        results are memoised (see :data:`_VERIFY_CACHE`) so a broadcast
        storm costs one hash per distinct (stamp, secret), not one per
        arrival.
        """
        cache_key = (self.origin, self.timestamp_ms, self.seq,
                     self.signature, secret)
        cached = _VERIFY_CACHE.get(cache_key)
        if cached is not None:
            PERF.hmac_cache_hits += 1
            return cached
        PERF.hmac_computed += 1
        result = self.signature == _sign(self.origin, self.timestamp_ms,
                                         self.seq, secret)
        if len(_VERIFY_CACHE) >= _VERIFY_CACHE_MAX:
            _VERIFY_CACHE.clear()
        _VERIFY_CACHE[cache_key] = result
        return result

    def key(self) -> tuple:
        """The dedup key retained inside the time window."""
        return (self.origin, self.timestamp_ms, self.seq)


@dataclass(frozen=True)
class SessionId:
    """Identity of one PPM session (user plus an origin stamp)."""

    user: str
    origin_host: str
    created_ms: float

    def __str__(self) -> str:
        return "%s@%s/%.0f" % (self.user, self.origin_host, self.created_ms)
