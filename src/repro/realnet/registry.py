"""Host discovery: name -> (address, port), shared through one file.

Real listeners bind to port 0 and let the kernel pick an ephemeral
port (no fixed-port collisions between test runs, no privileged
binds); the chosen address is then *published* here so other processes
can dial the host by name — the realnet stand-in for the name lookup
an internetwork would do over DNS.

Writes are atomic (temp file + ``os.replace``) so a reader never sees
a torn JSON document, and every mutation holds an ``flock`` on a
sidecar lock file across its read-modify-write so concurrent serve
processes publishing different hosts cannot lose each other's
entries.  (Replace alone is not enough: N hosts starting at once all
read the empty registry and the last replace wins — on a one-CPU
machine that race fires dependably.)  Readers never need the lock;
``os.replace`` keeps every read a complete document.
"""

from __future__ import annotations

import fcntl
import json
import os
import tempfile
import time
from typing import Callable, Dict, List, Optional, Tuple


class HostRegistry:
    """One shared registry file of live realnet listeners."""

    def __init__(self, path: str) -> None:
        self.path = path

    # -- reading ---------------------------------------------------------

    def read(self) -> Dict[str, Tuple[str, int]]:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except (OSError, ValueError):
            return {}
        return {host: (entry[0], int(entry[1]))
                for host, entry in raw.items()}

    def lookup(self, host: str) -> Optional[Tuple[str, int]]:
        return self.read().get(host)

    def wait_for(self, hosts: List[str], timeout_s: float = 15.0,
                 poll_s: float = 0.05) -> bool:
        """Block until every named host has published, or time out."""
        deadline = time.monotonic() + timeout_s
        while True:
            known = self.read()
            if all(host in known for host in hosts):
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(poll_s)

    # -- writing ---------------------------------------------------------

    def _write(self, entries: Dict[str, Tuple[str, int]]) -> None:
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, temp_path = tempfile.mkstemp(dir=directory,
                                         prefix=".registry-")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump({host: list(addr)
                           for host, addr in sorted(entries.items())},
                          handle)
            os.replace(temp_path, self.path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    def _locked_update(self, mutate: Callable[[Dict], None]) -> None:
        """Run one read-modify-write under an exclusive flock."""
        with open(self.path + ".lock", "w") as lock:
            fcntl.flock(lock, fcntl.LOCK_EX)
            try:
                entries = self.read()
                mutate(entries)
                self._write(entries)
            finally:
                fcntl.flock(lock, fcntl.LOCK_UN)

    def publish(self, host: str, address: str, port: int) -> None:
        self._locked_update(
            lambda entries: entries.__setitem__(host, (address, port)))

    def withdraw(self, host: str) -> None:
        self._locked_update(lambda entries: entries.pop(host, None))

    def prune(self, hosts: List[str]) -> List[str]:
        """Withdraw several entries in one locked update; returns the
        names actually removed.  The fast-recovery playbook uses this
        to clear entries ``repro doctor`` flagged as stale (published
        by a serve process that died without withdrawing)."""
        removed: List[str] = []

        def mutate(entries: Dict) -> None:
            for host in hosts:
                if entries.pop(host, None) is not None:
                    removed.append(host)

        self._locked_update(mutate)
        return removed

    def remove_files(self) -> None:
        """Delete the registry and its lock file (end of a fleet)."""
        for path in (self.path, self.path + ".lock"):
            try:
                os.unlink(path)
            except OSError:
                pass
