"""The real-network backend: the PPM over asyncio TCP processes.

The paper's PPM is "a distributed program implemented as a collection
of user-level processes" on a real internetwork; this package is the
fabric implementation (see :mod:`repro.core.fabric`) that makes it so.
Each participating host is one OS process (``python -m repro serve``)
running a real ``pmd`` listener and, on demand, a real LPM; tools are
:class:`repro.core.client.PPMClient` instances running unmodified over
an :class:`AsyncioFabric` — the same client code that drives the
simulator drives live TCP sockets here.

Layout:

* :mod:`~repro.realnet.framing` — length-prefixed framing of the
  existing ``core.wire`` Message encoding over byte streams.
* :mod:`~repro.realnet.registry` — a shared JSON file mapping host
  names to ``(address, port)`` pairs (the bind-to-port-0 discovery).
* :mod:`~repro.realnet.fabric` — the asyncio event loop behind the
  fabric contract: clock, timers, ``connect``, ``run_until_true``.
* :mod:`~repro.realnet.node` — per-host listener (services, accepted
  endpoints) plus the TCP endpoint type.
* :mod:`~repro.realnet.pmd` — the real process-manager daemon serving
  the Figure 2 bootstrap on the ``inetd`` service.
* :mod:`~repro.realnet.lpm` — the real LPM: tool verbs over
  :class:`repro.localos.RealBackend`, token-authenticated sibling
  channels, LOCATE across hosts.
* :mod:`~repro.realnet.serve` / :mod:`~repro.realnet.session` — the
  host daemon entry point and the client-side session/launch helpers.
"""

from .fabric import AsyncioFabric
from .registry import HostRegistry
from .session import RealSession, launch_hosts

__all__ = ["AsyncioFabric", "HostRegistry", "RealSession",
           "launch_hosts"]
