"""Client-side session against a live realnet PPM.

A :class:`RealSession` is the realnet counterpart of the simulator's
``World`` *as seen by a tool*: it exposes ``.fabric`` (the attribute
``PPMClient`` actually uses) and a convenience ``.client``, so the
same tool code runs unmodified against real serve processes.

:func:`launch_hosts` spawns N ``repro serve`` OS processes sharing one
registry file and waits until all have published their ephemeral
ports — the one-call way to stand up a live PPM for demos and tests.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from typing import List, Optional, Sequence

from ..core.client import PPMClient
from ..errors import PPMError
from .fabric import AsyncioFabric
from .registry import HostRegistry


class RealSession:
    """One tool process's view of a live realnet PPM."""

    def __init__(self, registry_path: str, user: str,
                 host_name: str) -> None:
        self.registry = HostRegistry(registry_path)
        self.fabric = AsyncioFabric(self.registry, local_host=host_name)
        self.user = user
        self.host_name = host_name
        self.client = PPMClient(self, user, host_name)

    def close(self) -> None:
        self.client.close()
        self.fabric.close()

    def __enter__(self) -> "RealSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class HostFleet:
    """N serve subprocesses sharing a registry; kills them on exit."""

    def __init__(self, registry_path: str,
                 processes: List[subprocess.Popen],
                 hosts: List[str], owns_registry: bool) -> None:
        self.registry_path = registry_path
        self.processes = processes
        self.hosts = hosts
        self._owns_registry = owns_registry

    def shutdown(self, grace_s: float = 5.0) -> None:
        """SIGTERM every serve process; escalate to SIGKILL after the
        grace period; remove the registry file if we created it."""
        for process in self.processes:
            if process.poll() is None:
                try:
                    process.send_signal(signal.SIGTERM)
                except OSError:
                    pass
        deadline = time.monotonic() + grace_s
        for process in self.processes:
            remaining = max(deadline - time.monotonic(), 0.1)
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        if self._owns_registry:
            HostRegistry(self.registry_path).remove_files()

    def __enter__(self) -> "HostFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def launch_hosts(hosts: Sequence[str],
                 registry_path: Optional[str] = None,
                 budget_s: Optional[float] = 120.0,
                 wait_s: float = 30.0) -> HostFleet:
    """Spawn one ``repro serve`` process per host name and wait until
    every one has published its port.  ``budget_s`` is each serve
    process's own wall-clock bound — a crashed launcher cannot leave
    servers running forever.  Set ``REPRO_SERVE_LOG_DIR`` to keep each
    serve process's stderr (``serve-<host>.err``) for debugging."""
    owns_registry = registry_path is None
    if owns_registry:
        fd, registry_path = tempfile.mkstemp(prefix="ppm-registry-",
                                             suffix=".json")
        os.close(fd)
        os.unlink(registry_path)
    log_dir = os.environ.get("REPRO_SERVE_LOG_DIR")
    processes = []
    for host in hosts:
        argv = [sys.executable, "-m", "repro", "serve",
                "--host", host, "--registry", registry_path]
        if budget_s is not None:
            argv += ["--budget-s", str(budget_s)]
        stderr = subprocess.DEVNULL if log_dir is None else open(
            os.path.join(log_dir, "serve-%s.err" % host), "w")
        processes.append(subprocess.Popen(
            argv, stdout=subprocess.DEVNULL, stderr=stderr,
            env=dict(os.environ,
                     PYTHONPATH=_src_pythonpath())))
    fleet = HostFleet(registry_path, processes, list(hosts),
                      owns_registry)
    registry = HostRegistry(registry_path)
    deadline = time.monotonic() + wait_s
    while True:
        if all(host in registry.read() for host in hosts):
            return fleet
        dead = [(host, process.returncode)
                for host, process in zip(hosts, processes)
                if process.poll() is not None]
        if dead:
            fleet.shutdown()
            raise PPMError(
                "serve process(es) exited before publishing: %s"
                % (", ".join("%s (status %s)" % entry
                             for entry in dead),))
        if time.monotonic() >= deadline:
            known = sorted(registry.read())
            fleet.shutdown()
            raise PPMError("serve processes did not all publish "
                           "within %.1fs (registry has %r)"
                           % (wait_s, known))
        time.sleep(0.05)


def probe_fleet(registry_path: str,
                expected_hosts: Optional[Sequence[str]] = None,
                timeout_ms: float = 3000.0,
                fabric: Optional[AsyncioFabric] = None) -> dict:
    """Probe a live fleet for ``repro doctor`` — no LPM side effects.

    Dials every expected host's ``__status__`` service through the
    same :class:`AsyncioFabric` the protocol stack uses, and scans
    ``/proc`` for marked orphans (PPM children whose serve process
    died).  Returns raw findings::

        {"registry": {host: (addr, port)},
         "statuses": {host: {"ok": True, "services": [...], ...}
                            | {"error": reason}},
         "orphans":  [{"pid": ..., "command": ...}, ...],
         "probed_at_ms": <fabric clock when the sweep started>}

    ``expected_hosts`` defaults to whatever the registry lists; pass
    the full fleet roster to also catch hosts that never published.
    ``fabric`` lets a long-lived caller (the watch loop) reuse one
    dial fabric across sweeps instead of paying a fresh event loop per
    probe; when omitted a private fabric is created and closed here.
    The backend-neutral reshaping lives in
    :func:`repro.ops.doctor.probe_fleet`.
    """
    from ..localos.procfs import find_marked_orphans
    from .node import STATUS_SERVICE

    registry = HostRegistry(registry_path)
    entries = registry.read()
    hosts = sorted(set(expected_hosts) | set(entries)) \
        if expected_hosts else sorted(entries)
    statuses = {}
    owns_fabric = fabric is None
    if owns_fabric:
        fabric = AsyncioFabric(registry, local_host="doctor")
    probed_at_ms = float(fabric.now_ms)
    try:
        for host in hosts:
            if host not in entries:
                statuses[host] = {"error": "not in registry"}
                continue
            result: dict = {}
            done: list = []

            def established(endpoint, result=result, done=done):
                def on_message(frame, ep):
                    if isinstance(frame, dict):
                        result.update(frame)
                    done.append(True)
                    ep.close()
                endpoint.on_message = on_message

            def failed(reason, result=result, done=done):
                result["error"] = reason
                done.append(True)

            fabric.connect("doctor", host, STATUS_SERVICE,
                           on_established=established,
                           on_failed=failed)
            fabric.run_until_true(lambda: bool(done),
                                  timeout_ms=timeout_ms)
            if not done:
                result = {"error": "status probe timed out"}
            elif "error" not in result and not result.get("ok"):
                result = {"error": "malformed status reply"}
            statuses[host] = result
    finally:
        if owns_fabric:
            fabric.close()
    return {"registry": entries, "statuses": statuses,
            "orphans": find_marked_orphans(),
            "probed_at_ms": probed_at_ms}


def _src_pythonpath() -> str:
    """A PYTHONPATH that lets ``-m repro`` import in the children even
    when the parent runs from a source checkout."""
    src = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    existing = os.environ.get("PYTHONPATH", "")
    return src + (os.pathsep + existing if existing else "")
