"""Length-prefixed framing of the PPM wire format over byte streams.

TCP is a byte stream; the protocol is message-oriented.  Every frame
on a realnet socket is::

    4 bytes big-endian body length | 1 tag byte | body

with two tags:

* ``b"M"`` — the body is :func:`repro.core.wire.encode` of a protocol
  :class:`~repro.core.messages.Message` (the *same* canonical JSON the
  simulator charges for — the wire format is backend-independent).
* ``b"J"`` — the body is a plain JSON object (connection-setup frames:
  service dial, accept/refuse, bootstrap payloads).

:class:`FrameDecoder` is incremental: feed it whatever ``read()``
returned — half a length prefix, three frames and a torn fourth — and
it yields exactly the completed frames, buffering the rest.  Torn
reads are counted (``real_partial_reads``) because they are the edge
the simulator never exercises.
"""

from __future__ import annotations

import json
import struct
from typing import List, Tuple, Union

from ..core.messages import Message
from ..core.wire import decode as wire_decode
from ..core.wire import encode as wire_encode
from ..errors import ReproError
from ..perf import PERF

#: struct format of the length prefix.
_LEN = struct.Struct(">I")

#: Refuse anything claiming a body larger than this (corrupt peer or
#: desynchronised stream — fail loudly rather than buffer gigabytes).
MAX_FRAME_BYTES = 16 * 1024 * 1024

TAG_MESSAGE = b"M"
TAG_JSON = b"J"


class FramingError(ReproError):
    """A malformed frame arrived (bad tag, oversized length, bad body)."""


def encode_frame(payload: Union[Message, dict]) -> bytes:
    """One wire frame for a protocol message or a control dict."""
    if isinstance(payload, Message):
        tag, body = TAG_MESSAGE, wire_encode(payload)
    else:
        tag = TAG_JSON
        body = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
    PERF.real_frames_sent += 1
    return _LEN.pack(len(body)) + tag + body


def decode_body(tag: bytes, body: bytes) -> Union[Message, dict]:
    if tag == TAG_MESSAGE:
        return wire_decode(body)
    if tag == TAG_JSON:
        return json.loads(body.decode("utf-8"))
    raise FramingError("unknown frame tag %r" % (tag,))


class FrameDecoder:
    """Incremental frame reassembly over arbitrary read boundaries."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Union[Message, dict]]:
        """Absorb one read's worth of bytes; return completed frames.

        Returns decoded payloads in arrival order.  Bytes beyond the
        last complete frame stay buffered for the next feed.
        """
        self._buffer.extend(data)
        frames: List[Union[Message, dict]] = []
        while True:
            header, body = self._next_frame()
            if header is None:
                break
            frames.append(decode_body(header, body))
            PERF.real_frames_received += 1
        if self._buffer and data:
            PERF.real_partial_reads += 1
        return frames

    def _next_frame(self) -> Tuple[bytes, bytes]:
        if len(self._buffer) < _LEN.size + 1:
            return None, b""
        (length,) = _LEN.unpack(bytes(self._buffer[:_LEN.size]))
        if length > MAX_FRAME_BYTES:
            raise FramingError("frame of %d bytes exceeds the %d-byte "
                               "cap" % (length, MAX_FRAME_BYTES))
        total = _LEN.size + 1 + length
        if len(self._buffer) < total:
            return None, b""
        tag = bytes(self._buffer[_LEN.size:_LEN.size + 1])
        body = bytes(self._buffer[_LEN.size + 1:total])
        del self._buffer[:total]
        return tag, body
