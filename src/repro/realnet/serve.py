"""The serve process: one real host of the PPM overlay.

``python -m repro serve --host a --registry /tmp/reg.json`` turns the
current OS process into one *host*: an :class:`AsyncioFabric`, a
:class:`RealNode` listening on an ephemeral TCP port, and a
:class:`RealPmd` on the well-known ``inetd`` service.  Launch N of
these and they form a live PPM — each user's LPMs appear on demand as
tools bootstrap in, and sibling channels between hosts are dialled
lazily exactly as in the simulator.

The process exits cleanly on SIGTERM/SIGINT or when the wall-clock
budget runs out, tearing down LPMs (killing their managed processes),
closing the listener, and withdrawing the registry entry so no stale
address lingers for the next run.
"""

from __future__ import annotations

import os
import signal
import sys
from typing import Optional

from .fabric import AsyncioFabric
from .node import RealNode
from .pmd import RealPmd
from .registry import HostRegistry


def serve_host(host_name: str, registry_path: str,
               bind_address: str = "127.0.0.1",
               budget_s: Optional[float] = None,
               trace_spans: bool = False,
               ready_line: bool = True,
               share_circuits: Optional[bool] = None) -> int:
    """Run one real host until signalled or out of budget.

    Returns a process exit status (0 on a clean run).  When
    ``ready_line`` is set, prints ``READY <host> <port>`` to stdout
    once the listener is bound — launchers wait on that line rather
    than polling the registry.
    """
    if share_circuits is None:
        share_circuits = os.environ.get("REPRO_CIRCUIT_SHARING") == "1"
    registry = HostRegistry(registry_path)
    fabric = AsyncioFabric(registry, local_host=host_name)
    if trace_spans:
        fabric.enable_span_tracing()
    node = RealNode(fabric, host_name, registry,
                    bind_address=bind_address)
    pmd = RealPmd(fabric, node, share_circuits=share_circuits)
    node.start()
    if ready_line:
        print("READY %s %d" % (host_name, node.port), flush=True)

    # Fully event-driven from here: the loop sleeps in the kernel until
    # a connection, a timer, or a stop signal — no polling, so an idle
    # fleet costs nothing even on a one-CPU machine.
    for signum in (signal.SIGTERM, signal.SIGINT):
        fabric.loop.add_signal_handler(signum, fabric.loop.stop)
    if budget_s is not None:
        fabric.schedule(budget_s * 1000.0, fabric.loop.stop,
                        label="serve budget")
    try:
        fabric.loop.run_forever()
    finally:
        for signum in (signal.SIGTERM, signal.SIGINT):
            fabric.loop.remove_signal_handler(signum)
        pmd.shutdown()
        node.close()
        fabric.close()
    return 0


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run one real PPM host process.")
    parser.add_argument("--host", required=True,
                        help="overlay host name to serve")
    parser.add_argument("--registry", required=True,
                        help="shared host-registry file")
    parser.add_argument("--bind", default="127.0.0.1",
                        help="address to bind (default 127.0.0.1)")
    parser.add_argument("--budget-s", type=float, default=None,
                        help="exit after this many wall seconds")
    parser.add_argument("--trace-spans", action="store_true",
                        help="enable span tracing in this process")
    parser.add_argument("--share-circuits", action="store_true",
                        default=None,
                        help="multiplex all users' sibling channels to "
                             "a peer host over one shared TCP circuit "
                             "(default: on when REPRO_CIRCUIT_SHARING=1)")
    options = parser.parse_args(argv)
    return serve_host(options.host, options.registry,
                      bind_address=options.bind,
                      budget_s=options.budget_s,
                      trace_spans=options.trace_spans,
                      share_circuits=options.share_circuits)


if __name__ == "__main__":
    sys.exit(main())
