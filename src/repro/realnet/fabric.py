"""The asyncio TCP implementation of the fabric contract.

One :class:`AsyncioFabric` per OS process owns one asyncio event loop.
Nothing here runs on background threads: the loop advances only while
someone pumps it — a serve process pumps it forever, a client pumps it
inside :meth:`AsyncioFabric.run_until_true` exactly the way the
simulator backend advances virtual time inside the same call.  That
keeps the protocol stack's callback model identical on both backends:
callbacks fire while the caller is blocked in ``run_until_true``.

The clock is wall time in milliseconds since the fabric was built, so
span tracers (which only need a ``now_ms``) produce real latency
histograms over real sockets.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Optional

from ..core.fabric import DEFAULT_DETECT_MS, Fabric
from ..perf import PERF
from ..perf.spans import DEFAULT_MAX_SPANS, SpanTracer
from .framing import FrameDecoder, encode_frame
from .node import RealEndpoint
from .registry import HostRegistry

#: How long one pump of the event loop lasts inside ``run_until_true``
#: (the latency floor for noticing a predicate became true).
_PUMP_S = 0.002


class AsyncioFabric(Fabric):
    """Fabric over real TCP sockets (see :mod:`repro.core.fabric`)."""

    backend_name = "realnet"

    #: Overridden per instance; class-level default keeps the base
    #: class's property from intercepting reads before assignment.
    tracer = None

    def __init__(self, registry: HostRegistry,
                 local_host: Optional[str] = None,
                 loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        self.registry = registry
        self.local_host = local_host
        self.loop = loop if loop is not None else asyncio.new_event_loop()
        self._epoch = time.monotonic()
        self.tracer = None

    # -- clock and timers ------------------------------------------------

    @property
    def now_ms(self) -> float:
        return (time.monotonic() - self._epoch) * 1000.0

    def schedule(self, delay_ms: float, callback: Callable, *args,
                 label: str = "", owner=None):
        return self.loop.call_later(max(0.0, delay_ms) / 1000.0,
                                    callback, *args)

    def cancel(self, handle) -> None:
        if handle is not None:
            handle.cancel()

    def run_until_true(self, predicate: Callable[[], bool],
                       timeout_ms: float = 600_000.0) -> bool:
        deadline = time.monotonic() + timeout_ms / 1000.0
        while not predicate():
            if time.monotonic() >= deadline:
                return False
            self.loop.run_until_complete(asyncio.sleep(_PUMP_S))
        return True

    # -- observability ---------------------------------------------------

    def enable_span_tracing(self, max_spans: int = DEFAULT_MAX_SPANS):
        """Attach a span tracer timestamped from this fabric's clock."""
        if self.tracer is None:
            self.tracer = SpanTracer(self, max_spans=max_spans)
        return self.tracer

    # -- connections -----------------------------------------------------

    def connect(self, src: str, dst: str, service: str, payload=None,
                setup_ms: float = 0.0,
                on_established: Optional[Callable] = None,
                on_failed: Optional[Callable] = None,
                detect_ms: float = DEFAULT_DETECT_MS):
        """Dial ``service`` on ``dst`` (resolved through the registry).

        Mirrors the netsim semantics: asynchronous, with exactly one of
        ``on_established(endpoint)`` / ``on_failed(reason)`` firing —
        the latter when the host is unknown, unreachable, or its node
        refuses the service.  ``setup_ms`` is ignored (the handshake
        has real cost here).
        """
        return self.loop.create_task(self._dial(
            src, dst, service, payload, on_established, on_failed))

    async def _dial(self, src: str, dst: str, service: str, payload,
                    on_established, on_failed) -> None:
        address = self.registry.lookup(dst)
        if address is None:
            if on_failed is not None:
                on_failed("unreachable: %s not in registry" % (dst,))
            return
        try:
            reader, writer = await asyncio.open_connection(*address)
        except OSError as exc:
            if on_failed is not None:
                on_failed("connect refused: %s" % (exc,))
            return
        PERF.real_connects += 1
        writer.write(encode_frame({"connect": service, "src": src,
                                   "payload": payload}))
        decoder = FrameDecoder()
        frames = []
        while not frames:
            data = await reader.read(65536)
            if not data:
                writer.close()
                if on_failed is not None:
                    on_failed("closed during handshake")
                return
            frames = decoder.feed(data)
        answer = frames[0]
        if not isinstance(answer, dict) or not answer.get("ok"):
            writer.close()
            if on_failed is not None:
                reason = "refused"
                if isinstance(answer, dict):
                    reason = answer.get("error", "refused")
                on_failed(reason)
            return
        endpoint = RealEndpoint(self, reader, writer, local_name=src,
                                peer_name=answer.get("host", dst),
                                decoder=decoder)
        if on_established is not None:
            on_established(endpoint)
        # Frames that rode in behind the accept (e.g. an eager
        # HELLO_ACK) dispatch only after the caller installed handlers.
        for frame in frames[1:]:
            endpoint.dispatch(frame)
        endpoint.start()

    # -- datagram port ---------------------------------------------------
    # The realnet backend carries everything over TCP; the datagram
    # transport (PPMConfig(transport="datagram")) is a netsim-only
    # scalability study for now.

    def datagram_bind(self, host: str, port: str,
                      handler: Callable) -> None:
        raise NotImplementedError(
            "realnet has no datagram transport; use transport='stream'")

    def datagram_unbind(self, host: str, port: str) -> None:
        raise NotImplementedError(
            "realnet has no datagram transport; use transport='stream'")

    def datagram_send(self, src: str, dst: str, port: str, payload,
                      nbytes: int = 256,
                      extra_delay_ms: float = 0.0) -> None:
        raise NotImplementedError(
            "realnet has no datagram transport; use transport='stream'")

    # -- cost accounting -------------------------------------------------

    def tool_send_delay_ms(self, host_name: str) -> float:
        return 0.0

    # -- teardown --------------------------------------------------------

    def close(self) -> None:
        """Cancel outstanding tasks and close the loop."""
        pending = [task for task in asyncio.all_tasks(self.loop)
                   if not task.done()]
        for task in pending:
            task.cancel()
        if pending:
            self.loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True))
        self.loop.close()
