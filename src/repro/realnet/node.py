"""Per-host listener and the real TCP endpoint type.

A :class:`RealNode` is one host's presence on the real network: a
single asyncio server socket (bound to port 0 — the kernel picks an
ephemeral port, discovered from the bound socket and published to the
registry) multiplexing every service the host offers, the way the
simulator's ``NetworkNode`` multiplexes named services on one host.

A :class:`RealEndpoint` satisfies the endpoint contract documented in
:mod:`repro.core.fabric`: the protocol stack (and ``PPMClient``) uses
it exactly as it uses a netsim ``StreamEndpoint``.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, List, Optional

from ..errors import ConnectionClosedError
from .framing import FrameDecoder, FramingError, encode_frame
from .registry import HostRegistry

#: Built-in liveness/inventory service every node answers (the probe
#: surface ``repro doctor`` dials; see ``docs/OPERATIONS.md``).  One
#: request frame in, one status frame out, no LPM side effects.
STATUS_SERVICE = "__status__"


class RealEndpoint:
    """One side of a live TCP connection (endpoint contract)."""

    def __init__(self, fabric, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, local_name: str,
                 peer_name: str,
                 decoder: Optional[FrameDecoder] = None) -> None:
        self.fabric = fabric
        self.reader = reader
        self.writer = writer
        self.local_name = local_name
        self.peer_name = peer_name
        self.open = True
        self.on_message: Optional[Callable] = None
        self.on_close: Optional[Callable] = None
        self.context = None
        self._decoder = decoder if decoder is not None else FrameDecoder()
        self._reader_task: Optional[asyncio.Task] = None

    def start(self) -> None:
        """Begin pulling frames off the socket (idempotent)."""
        if self._reader_task is None and self.open:
            self._reader_task = self.fabric.loop.create_task(
                self._read_loop())

    async def _read_loop(self) -> None:
        try:
            while self.open:
                data = await self.reader.read(65536)
                if not data:
                    self._closed("closed")
                    return
                for frame in self._decoder.feed(data):
                    self.dispatch(frame)
        except (ConnectionError, OSError):
            self._closed("connection reset")
        except FramingError:
            self._closed("protocol error")
        except asyncio.CancelledError:
            raise

    def dispatch(self, frame) -> None:
        if self.open and self.on_message is not None:
            self.on_message(frame, self)

    def send(self, payload, nbytes: Optional[int] = None,
             extra_delay_ms: float = 0.0) -> None:
        """Queue one frame.  ``nbytes`` and ``extra_delay_ms`` are the
        simulator's charge accounting — here the bytes and the CPU time
        are real, so both are accepted and ignored."""
        if not self.open:
            raise ConnectionClosedError(
                "%s -> %s" % (self.local_name, self.peer_name))
        self.writer.write(encode_frame(payload))

    def close(self) -> None:
        """Orderly close; the peer sees ``on_close('closed')`` via EOF.
        Idempotent, and (matching netsim) the initiator's own
        ``on_close`` does not fire."""
        if not self.open:
            return
        self.open = False
        if self._reader_task is not None:
            self._reader_task.cancel()
        try:
            self.writer.close()
        except OSError:
            pass

    def _closed(self, reason: str) -> None:
        if not self.open:
            return
        self.open = False
        try:
            self.writer.close()
        except OSError:
            pass
        if self.on_close is not None:
            self.on_close(reason, self)

    def __repr__(self) -> str:
        return "RealEndpoint(%s <-> %s, %s)" % (
            self.local_name, self.peer_name,
            "open" if self.open else "closed")


class RealNode:
    """One host's real listener: services plus accepted endpoints."""

    def __init__(self, fabric, host_name: str,
                 registry: HostRegistry,
                 bind_address: str = "127.0.0.1") -> None:
        self.fabric = fabric
        self.host_name = host_name
        self.registry = registry
        self.bind_address = bind_address
        #: service name -> acceptor(endpoint, payload).
        self.services: Dict[str, Callable] = {}
        self.server: Optional[asyncio.AbstractServer] = None
        self.port: Optional[int] = None
        #: every endpoint accepted by this node, for shutdown cleanup.
        self._accepted: List[RealEndpoint] = []
        self.listen(STATUS_SERVICE, self._on_status)

    # -- service registry (NetworkNode.listen/unlisten equivalent) -------

    def listen(self, service: str, acceptor: Callable) -> None:
        self.services[service] = acceptor

    def unlisten(self, service: str) -> None:
        self.services.pop(service, None)

    def _on_status(self, endpoint, payload) -> None:
        """Answer a doctor probe: one frame of node inventory.  The
        service list names every live LPM's accept service, so the
        probe learns which users have LPMs here without bootstrapping
        one itself."""
        endpoint.send({"ok": True, "host": self.host_name,
                       "port": self.port,
                       "services": sorted(self.services)})

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Bind to port 0, discover the kernel-assigned port, publish."""
        self.server = self.fabric.loop.run_until_complete(
            asyncio.start_server(self._accept_connection,
                                 self.bind_address, 0))
        self.port = self.server.sockets[0].getsockname()[1]
        self.registry.publish(self.host_name, self.bind_address,
                              self.port)

    async def _accept_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        decoder = FrameDecoder()
        frames = []
        try:
            while not frames:
                data = await reader.read(65536)
                if not data:
                    writer.close()
                    return
                frames = decoder.feed(data)
        except (ConnectionError, OSError, FramingError):
            writer.close()
            return
        hello = frames[0]
        service = hello.get("connect") if isinstance(hello, dict) else None
        acceptor = self.services.get(service)
        if acceptor is None:
            writer.write(encode_frame(
                {"ok": False, "error": "no such service: %r" % (service,)}))
            writer.close()
            return
        endpoint = RealEndpoint(self.fabric, reader, writer,
                                local_name=self.host_name,
                                peer_name=hello.get("src", "?"),
                                decoder=decoder)
        self._accepted.append(endpoint)
        writer.write(encode_frame({"ok": True, "host": self.host_name}))
        acceptor(endpoint, hello.get("payload"))
        for frame in frames[1:]:
            endpoint.dispatch(frame)
        endpoint.start()

    def close(self) -> None:
        """Stop listening, close accepted endpoints, withdraw the
        registry entry — nothing of this host outlives the node."""
        if self.server is not None:
            self.server.close()
            self.fabric.loop.run_until_complete(
                self.server.wait_closed())
            self.server = None
        for endpoint in list(self._accepted):
            endpoint.close()
        self._accepted.clear()
        self.registry.withdraw(self.host_name)
