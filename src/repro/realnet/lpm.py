"""The real LPM: one user's process manager on one real host.

Speaks the same :class:`~repro.core.messages.Message` protocol the
simulated LPM speaks — the same tool verbs, the same HELLO/HELLO_ACK
channel authentication, the same LOCATE/GATHER sibling conversations —
but over real TCP endpoints, and its process table is a
:class:`repro.localos.RealBackend`: creation is ``subprocess``,
control is real signals, genealogy comes from ``/proc``.

Scope relative to :class:`repro.core.lpm.LocalProcessManager`: sibling
links are dialled directly to the named host (no multi-hop forwarding
or route caches — the real transport is an actual internetwork that
routes for us), there is no retransmission layer (TCP is reliable),
and gathers are one level deep over the host's authenticated siblings.
The administrative semantics the paper cares about — create, control,
locate, snapshot, rstats across machine boundaries, channel
authentication at creation time — are all live.
"""

from __future__ import annotations

import os
import sys
from typing import Callable, Dict, List, Optional

from ..core.control import ControlAction
from ..core.messages import Message, MsgKind
from ..core.wire import message_size_bytes
from ..errors import NoSuchProcessError, PPMError
from ..ids import GlobalPid
from ..localos import RealBackend
from ..localos.procfs import ORPHAN_MARKER
from ..unixsim.inetd import INETD_SERVICE, PPM_SERVICE
from ..util import Deferred

#: Default program for a created process with no explicit argv: a
#: quiet sleeper the control verbs can push around.
_DEFAULT_SLEEP_S = 60


def _argv_for(payload: dict) -> List[str]:
    """The real argv for a tool CREATE request.

    ``program["argv"]`` is used verbatim when given; otherwise the
    command becomes a named sleeper (``program["run_ms"]`` bounds its
    life), which is enough for the managed-process semantics — the
    PPM administers processes, it does not care what they compute.
    """
    program = payload.get("program") or {}
    if not isinstance(program, dict):
        program = {}
    if program.get("argv"):
        return [str(part) for part in program["argv"]]
    duration_ms = program.get("duration_ms", program.get("run_ms"))
    run_s = _DEFAULT_SLEEP_S if duration_ms is None \
        else float(duration_ms) / 1000.0
    # The marker comment rides the argv (visible in /proc/<pid>/cmdline)
    # so a doctor orphan scan can recognise PPM children whose serve
    # process died — see repro.localos.procfs.find_marked_orphans.
    return [sys.executable, "-c",
            "import time; time.sleep(%f)  # %s" % (run_s, ORPHAN_MARKER)]


class RealLpm:
    """One user's LPM on one serve process."""

    def __init__(self, fabric, node, user: str, token: str,
                 pool=None) -> None:
        self.fabric = fabric
        self.node = node
        self.name = node.host_name
        self.user = user
        self.token = token
        #: Shared :class:`~repro.core.circuitpool.CircuitPool` when the
        #: serve process runs with circuit sharing; sibling channels
        #: then ride per-user lanes on pooled TCP connections.
        self.pool = pool
        self.running = True
        self.secret = os.urandom(8).hex()
        self.ccs_host = self.name
        self.backend = RealBackend(host_name=self.name)
        self.accept_service = "lpm:%s:%s" % (user, token[:8])
        node.listen(self.accept_service, self._accept)
        #: peer host -> authenticated sibling endpoint.
        self.siblings: Dict[str, object] = {}
        self._pending_links: Dict[str, Deferred] = {}
        #: req_id -> (on_reply, timer) for outstanding sibling requests.
        self._pending: Dict[int, tuple] = {}
        self._req_counter = 0
        self.tools: List = []
        if pool is not None:
            pool.register_user(user, self._accept_lane)

    # ------------------------------------------------------------------
    # Accepting connections (Figure 4's accept socket)
    # ------------------------------------------------------------------

    def _accept(self, endpoint, payload) -> None:
        payload = payload or {}
        role = payload.get("role")
        if role == "tool":
            self.tools.append(endpoint)
            endpoint.on_message = self._tool_on_message
            endpoint.on_close = self._tool_on_close
            return
        if role == "sibling":
            self._accept_lane(endpoint, payload)
            return
        endpoint.close()

    def _accept_lane(self, endpoint, payload) -> None:
        """Authenticate a sibling channel (private circuit or pooled
        lane — the handshake is identical) and acknowledge it."""
        # Channel authentication at channel-creation time (section 3):
        # the pmd-issued token proves the trusted introduction.
        if payload.get("token") != self.token or \
                payload.get("user") != self.user:
            endpoint.close()
            return
        peer = payload.get("from_host", endpoint.peer_name)
        self._register_sibling(peer, endpoint)
        ack = Message(kind=MsgKind.HELLO_ACK,
                      req_id=self._next_req_id(),
                      origin=self.name, user=self.user,
                      payload={"secret": self.secret,
                               "ccs_host": self.ccs_host,
                               "known": sorted(self.siblings)})
        endpoint.send(ack, nbytes=message_size_bytes(ack))

    def _register_sibling(self, peer: str, endpoint) -> None:
        old = self.siblings.get(peer)
        if old is not None and old.open and old is not endpoint:
            old.close()
        self.siblings[peer] = endpoint
        endpoint.on_message = self._sibling_on_message
        endpoint.on_close = self._sibling_on_close

    def _next_req_id(self) -> int:
        self._req_counter += 1
        return self._req_counter

    # ------------------------------------------------------------------
    # Sibling links on demand (Figure 2 bootstrap over real TCP)
    # ------------------------------------------------------------------

    def ensure_sibling(self, peer: str) -> Deferred:
        done = Deferred()
        if peer == self.name:
            done.resolve(None)
            return done
        existing = self.siblings.get(peer)
        if existing is not None and existing.open:
            done.resolve(existing)
            return done
        if peer in self._pending_links:
            return self._pending_links[peer]
        self._pending_links[peer] = done
        done.then(lambda _result: self._pending_links.pop(peer, None))

        def bootstrap_replied(payload, endpoint) -> None:
            endpoint.close()
            if not isinstance(payload, dict) or not payload.get("ok"):
                done.resolve(None)
                return
            self._open_sibling_channel(peer, payload, done)

        def bootstrap_established(endpoint) -> None:
            endpoint.on_message = bootstrap_replied
            endpoint.on_close = lambda reason, ep: done.resolve(None)

        self.fabric.connect(
            self.name, peer, INETD_SERVICE,
            payload={"service": PPM_SERVICE, "user": self.user,
                     "origin_host": self.name, "origin_user": self.user},
            on_established=bootstrap_established,
            on_failed=lambda reason: done.resolve(None))
        return done

    def _open_sibling_channel(self, peer: str, bootstrap: dict,
                              done: Deferred) -> None:
        hello = {"role": "sibling", "user": self.user,
                 "from_host": self.name, "token": bootstrap["token"],
                 "secret": self.secret, "ccs_host": self.ccs_host}

        if self.pool is not None:
            def lane_ready(endpoint) -> None:
                self._register_sibling(peer, endpoint)
                endpoint.context = {"await_ack": done}
                greeting = Message(kind=MsgKind.HELLO,
                                   req_id=self._next_req_id(),
                                   origin=self.name, user=self.user,
                                   payload=hello)
                endpoint.send(greeting,
                              nbytes=message_size_bytes(greeting))

            self.pool.attach(peer, self.user, on_established=lane_ready,
                             on_failed=lambda reason: done.resolve(None))
            return

        def established(endpoint) -> None:
            self._register_sibling(peer, endpoint)
            endpoint.context = {"await_ack": done}

        self.fabric.connect(
            self.name, peer, bootstrap["accept_service"], payload=hello,
            on_established=established,
            on_failed=lambda reason: done.resolve(None))

    # ------------------------------------------------------------------
    # Sibling conversation
    # ------------------------------------------------------------------

    def _sibling_on_message(self, message, endpoint) -> None:
        if not isinstance(message, Message) or not self.running:
            return
        kind = message.kind
        if kind is MsgKind.HELLO_ACK:
            context = endpoint.context or {}
            waiter = context.get("await_ack")
            if waiter is not None:
                waiter.resolve(endpoint)
            return
        if message.is_reply:
            entry = self._pending.pop(message.reply_to, None)
            if entry is not None:
                on_reply, timer = entry
                self.fabric.cancel(timer)
                on_reply(message)
            return
        handler = {
            MsgKind.CREATE: self._serve_create,
            MsgKind.CONTROL: self._serve_control,
            MsgKind.LOCATE: self._serve_locate,
            MsgKind.GATHER: self._serve_gather,
            MsgKind.RSTATS: self._serve_rstats,
        }.get(kind)
        if handler is not None:
            handler(message, endpoint)

    def _sibling_on_close(self, reason: str, endpoint) -> None:
        # A channel refused before its HELLO_ACK must still fail the
        # pending ensure_sibling (idempotent if already resolved).
        context = getattr(endpoint, "context", None) or {}
        waiter = context.get("await_ack")
        if waiter is not None:
            waiter.resolve(None)
        for peer, known in list(self.siblings.items()):
            if known is endpoint:
                del self.siblings[peer]

    def _request(self, peer: str, kind: MsgKind, payload: dict,
                 on_reply: Callable[[Optional[Message]], None],
                 timeout_ms: float = 15_000.0) -> None:
        """One request to a sibling; ``on_reply(None)`` on timeout or
        when no link can be built."""
        def with_link(endpoint) -> None:
            if endpoint is None or not endpoint.open:
                on_reply(None)
                return
            req_id = self._next_req_id()
            message = Message(kind=kind, req_id=req_id, origin=self.name,
                              user=self.user, payload=payload)
            timer = self.fabric.schedule(timeout_ms, self._request_timeout,
                                         req_id)
            self._pending[req_id] = (on_reply, timer)
            endpoint.send(message, nbytes=message_size_bytes(message))

        self.ensure_sibling(peer).then(with_link)

    def _request_timeout(self, req_id: int) -> None:
        entry = self._pending.pop(req_id, None)
        if entry is not None:
            entry[0](None)

    def _reply_on_link(self, endpoint, request: Message, kind: MsgKind,
                       payload: dict) -> None:
        reply = request.make_reply(kind, self.name, payload)
        if endpoint.open:
            endpoint.send(reply, nbytes=message_size_bytes(reply))

    # -- serving sibling requests ---------------------------------------

    def _serve_create(self, message: Message, endpoint) -> None:
        result = self._create_local(message.payload)
        self._reply_on_link(endpoint, message, MsgKind.CREATE_ACK, result)

    def _serve_control(self, message: Message, endpoint) -> None:
        result = self._control_local(message.payload)
        self._reply_on_link(endpoint, message, MsgKind.CONTROL_ACK, result)

    def _serve_locate(self, message: Message, endpoint) -> None:
        self._reply_on_link(endpoint, message, MsgKind.LOCATE_ACK,
                            self._locate_local(message.payload))

    def _serve_gather(self, message: Message, endpoint) -> None:
        self._reply_on_link(
            endpoint, message, MsgKind.GATHER_REPLY,
            {"ok": True, "records": self._local_records("snapshot")})

    def _serve_rstats(self, message: Message, endpoint) -> None:
        self._reply_on_link(
            endpoint, message, MsgKind.RSTATS_REPLY,
            {"ok": True, "records": self._local_records("rstats")})

    # ------------------------------------------------------------------
    # Local process operations (the localos backend)
    # ------------------------------------------------------------------

    def _create_local(self, payload: dict) -> dict:
        parent = payload.get("parent")
        gpid = self.backend.spawn(
            _argv_for(payload), name=payload.get("command"),
            parent=GlobalPid(parent[0], parent[1]) if parent else None)
        return {"ok": True, "host": gpid.host, "pid": gpid.pid}

    def _control_local(self, payload: dict) -> dict:
        gpid = GlobalPid(payload["host"], payload["pid"])
        try:
            action = ControlAction(payload["action"])
            self.backend.control(gpid, action)
        except (ValueError, NoSuchProcessError, PPMError) as exc:
            return {"ok": False, "error": str(exc),
                    "host": gpid.host, "pid": gpid.pid}
        return {"ok": True, "host": gpid.host, "pid": gpid.pid,
                "action": payload["action"],
                "state": self.backend.state_of(gpid)}

    def _locate_local(self, payload: dict) -> dict:
        pid = payload.get("pid")
        found = payload.get("host") == self.name and \
            pid in self.backend.managed_pids()
        answer = {"ok": found, "host": self.name, "pid": pid}
        if found:
            answer["state"] = self.backend.state_of(
                GlobalPid(self.name, pid))
        return answer

    def _local_records(self, what: str) -> List[dict]:
        if what == "rstats":
            records = self.backend.rstats()
        else:
            records = list(
                self.backend.snapshot(prune=False).records.values())
        return [record.to_dict() for record in records]

    # ------------------------------------------------------------------
    # Tool service
    # ------------------------------------------------------------------

    def _tool_on_message(self, message, endpoint) -> None:
        if not isinstance(message, Message) or not self.running:
            return
        tracer = self.fabric.tracer
        if tracer is not None:
            message._span = tracer.start(
                "serve:%s" % message.kind.value, host=self.name,
                parent=message.trace, cat="serve")
        handler = getattr(self, "_tool_" + message.kind.value, None)
        if handler is None:
            self._tool_reply(endpoint, message,
                             {"ok": False, "error": "unknown request"})
            return
        handler(message, endpoint)

    def _tool_on_close(self, reason: str, endpoint) -> None:
        if endpoint in self.tools:
            self.tools.remove(endpoint)

    def _tool_reply(self, endpoint, request: Message,
                    payload: dict) -> None:
        tracer = self.fabric.tracer
        if tracer is not None:
            span = getattr(request, "_span", None)
            if span is not None and span.end_ms is None:
                tracer.finish(span, ok=bool(payload.get("ok")))
        if not endpoint.open:
            return
        reply = Message(kind=MsgKind.TOOL_REPLY, req_id=request.req_id,
                        origin=self.name, user=self.user, payload=payload,
                        reply_to=request.req_id, trace=request.trace)
        endpoint.send(reply, nbytes=message_size_bytes(reply))

    # -- the tool verbs --------------------------------------------------

    def _tool_tool_ping(self, message: Message, endpoint) -> None:
        self._tool_reply(endpoint, message,
                         {"ok": True, "host": self.name,
                          "time_ms": self.fabric.now_ms})

    def _tool_tool_session_info(self, message: Message, endpoint) -> None:
        self._tool_reply(endpoint, message, {
            "ok": True,
            "host": self.name,
            "user": self.user,
            "ccs_host": self.ccs_host,
            "siblings": sorted(peer for peer, link in
                               self.siblings.items() if link.open),
            "endpoints": {"accept": self.accept_service,
                          "tools": len(self.tools)},
            "recovery_state": "normal",
            "local_pids": self.backend.managed_pids(),
        })

    def _tool_tool_create(self, message: Message, endpoint) -> None:
        target = message.payload.get("host", self.name)
        if target == self.name:
            self._tool_reply(endpoint, message,
                             self._create_local(message.payload))
            return

        def on_ack(reply: Optional[Message]) -> None:
            self._tool_reply(endpoint, message,
                             reply.payload if reply is not None else
                             {"ok": False,
                              "error": "create on %s failed" % (target,)})

        self._request(target, MsgKind.CREATE, dict(message.payload),
                      on_ack)

    def _tool_tool_control(self, message: Message, endpoint) -> None:
        target = message.payload.get("host", self.name)
        if target == self.name:
            self._tool_reply(endpoint, message,
                             self._control_local(message.payload))
            return

        def on_ack(reply: Optional[Message]) -> None:
            self._tool_reply(endpoint, message,
                             reply.payload if reply is not None else
                             {"ok": False,
                              "error": "control on %s failed" % (target,)})

        self._request(target, MsgKind.CONTROL, dict(message.payload),
                      on_ack)

    def _tool_tool_locate(self, message: Message, endpoint) -> None:
        target = message.payload.get("host", self.name)
        pid = message.payload.get("pid")
        if target == self.name:
            local = self._locate_local(message.payload)
            answer = {"ok": True, "found": bool(local["ok"]),
                      "host": target, "pid": pid}
            if "state" in local:
                answer["state"] = local["state"]
            self._tool_reply(endpoint, message, answer)
            return

        def on_ack(reply: Optional[Message]) -> None:
            if reply is not None and reply.payload.get("ok"):
                answer = {"ok": True, "found": True,
                          "host": reply.payload.get("host", target),
                          "pid": pid}
                if "state" in reply.payload:
                    answer["state"] = reply.payload["state"]
            else:
                answer = {"ok": True, "found": False, "host": target,
                          "pid": pid}
            self._tool_reply(endpoint, message, answer)

        self._request(target, MsgKind.LOCATE,
                      {"host": target, "pid": pid}, on_ack)

    def _tool_tool_snapshot(self, message: Message, endpoint) -> None:
        self._gather("snapshot", message, endpoint)

    def _tool_tool_rstats(self, message: Message, endpoint) -> None:
        self._gather("rstats", message, endpoint)

    def _gather(self, what: str, message: Message, endpoint) -> None:
        """One-level gather: local records plus every open sibling."""
        merged = self._local_records(what)
        peers = sorted(peer for peer, link in self.siblings.items()
                       if link.open)
        missing: List[str] = []
        outstanding = {"n": len(peers)}

        def finish() -> None:
            self._tool_reply(endpoint, message,
                             {"ok": True, "records": merged,
                              "missing": missing})

        if not peers:
            finish()
            return

        def on_peer_reply(peer: str):
            def handle(reply: Optional[Message]) -> None:
                if reply is not None and reply.payload.get("ok"):
                    merged.extend(reply.payload.get("records", []))
                else:
                    missing.append(peer)
                outstanding["n"] -= 1
                if outstanding["n"] == 0:
                    finish()
            return handle

        kind = MsgKind.RSTATS if what == "rstats" else MsgKind.GATHER
        for peer in peers:
            self._request(peer, kind, {"what": what},
                          on_peer_reply(peer))

    # ------------------------------------------------------------------
    # Shutdown (the orphaned-listener cleanup lives here)
    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Kill managed processes, close every channel, and unlisten
        the accept service so nothing dials a dead LPM."""
        if not self.running:
            return
        self.running = False
        self.node.unlisten(self.accept_service)
        for entry in self._pending.values():
            self.fabric.cancel(entry[1])
        self._pending.clear()
        for endpoint in list(self.tools):
            endpoint.close()
        self.tools = []
        for endpoint in list(self.siblings.values()):
            endpoint.close()
        self.siblings.clear()
        if self.pool is not None:
            self.pool.unregister_user(self.user)
        self.backend.shutdown()
