"""The real pmd: per-host manager-of-managers over real TCP.

Plays the roles the simulator splits between ``inetd`` and ``pmd``
(Figure 2): it listens on the well-known ``inetd`` service, and a
bootstrap request for the ``ppm`` service gets (or creates) the
requesting user's :class:`~repro.realnet.lpm.RealLpm` on this host and
returns the LPM's private accept service plus the introduction token
that authenticates sibling channels to it.
"""

from __future__ import annotations

from typing import Dict

import os

from ..core.circuitpool import CircuitPool
from ..unixsim.inetd import INETD_SERVICE, PPM_SERVICE
from .lpm import RealLpm


class RealPmd:
    """One per serve process; owns every user's LPM on this host."""

    def __init__(self, fabric, node, share_circuits: bool = False) -> None:
        self.fabric = fabric
        self.node = node
        #: user -> that user's RealLpm on this host.
        self.lpms: Dict[str, RealLpm] = {}
        self.requests_served = 0
        #: Shared circuit pool (multi-tenant mode): every user's
        #: sibling traffic to one peer host multiplexes over one real
        #: TCP connection, demultiplexed by ``Message.lane``.
        self.pool = None
        if share_circuits:
            self.pool = CircuitPool.ensure(node, fabric, node,
                                           node.host_name)
        node.listen(INETD_SERVICE, self._on_bootstrap)

    def get_or_create_lpm(self, user: str) -> RealLpm:
        lpm = self.lpms.get(user)
        if lpm is None or not lpm.running:
            lpm = RealLpm(self.fabric, self.node, user,
                          token=os.urandom(16).hex(), pool=self.pool)
            self.lpms[user] = lpm
        return lpm

    def _on_bootstrap(self, endpoint, payload) -> None:
        self.requests_served += 1
        if not isinstance(payload, dict) or "service" not in payload:
            self._reply(endpoint, {"ok": False, "error": "bad request"})
            return
        if payload["service"] != PPM_SERVICE:
            self._reply(endpoint, {
                "ok": False,
                "error": "unknown service %r" % (payload["service"],)})
            return
        user = payload.get("user", "")
        created = user not in self.lpms or not self.lpms[user].running
        lpm = self.get_or_create_lpm(user)
        self._reply(endpoint, {
            "ok": True,
            "created": created,
            "user": user,
            "lpm_host": lpm.name,
            "accept_service": lpm.accept_service,
            "token": lpm.token,
        })

    def _reply(self, endpoint, reply: dict) -> None:
        if endpoint.open:
            endpoint.send(reply, nbytes=160)

    def shutdown(self) -> None:
        """Tear down every LPM (and its managed processes)."""
        self.node.unlisten(INETD_SERVICE)
        for lpm in list(self.lpms.values()):
            lpm.shutdown()
        self.lpms.clear()
