"""Tunable parameters of the PPM.

The paper leaves several knobs open as configuration parameters: the
time-to-live of an idle LPM (section 3), the time window for retaining old
broadcast requests (section 4), the time-to-die interval of an LPM that
cannot reach any recovery host (section 5), and the low probing frequency
with which a stand-in crash coordinator checks hosts higher on the recovery
list (section 5).  :class:`PPMConfig` gathers them with defaults sized for
the simulated workloads; everything is in simulated milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from .errors import ConfigError

#: Size in bytes of the kernel-to-LPM event message measured in Table 1.
KERNEL_MESSAGE_BYTES = 112


@dataclass(frozen=True)
class PPMConfig:
    """Configuration shared by the LPMs of one personal process manager."""

    #: How long an LPM lingers on a host that no longer runs any of its
    #: user's processes (section 3: "LPMs have a time-to-live period").
    lpm_time_to_live_ms: float = 600_000.0

    #: How long an LPM that cannot reach any recovery-list host keeps its
    #: user's processes alive before terminating them and exiting
    #: (section 5: the time-to-die interval).
    time_to_die_ms: float = 900_000.0

    #: Retention window for signed broadcast timestamps (section 4: "the
    #: appropriate time window for retaining old broadcast requests is a
    #: configuration parameter").
    broadcast_dedup_window_ms: float = 60_000.0

    #: Low-frequency probe interval used by a stand-in CCS to test hosts
    #: higher on the recovery list (section 5).
    ccs_probe_interval_ms: float = 30_000.0

    #: Interval between an orphaned LPM's attempts to reach a CCS before
    #: its time-to-die expires (section 5: "resumes the normal mode of
    #: operation if it manages to connect to the CCS at any future retry").
    recovery_retry_interval_ms: float = 10_000.0

    #: How long a broken stream goes unnoticed before the surviving end is
    #: told (TCP keepalive-style detection).
    connection_detect_ms: float = 2_000.0

    #: Maximum handler processes an LPM dispatcher keeps around; handlers
    #: are reused because "process creation in UNIX is relatively
    #: expensive" (section 6).
    handler_pool_max: int = 8

    #: How long a handler waits for a remote response before reporting
    #: failure to the dispatcher (section 6).
    request_timeout_ms: float = 30_000.0

    #: Sibling-graph policy: ``"on_demand"`` opens connections only when
    #: needed (the paper's design); ``"full_mesh"`` keeps all pairs
    #: connected (the A3 ablation); ``"sparse"`` maintains a
    #: bounded-degree ring-plus-chords overlay (with per-source
    #: broadcast trees and cache-first LOCATE) so sessions scale past
    #: ~100 hosts with O(n·k) links instead of O(n²).
    topology_policy: str = "on_demand"

    #: Target degree of the ``"sparse"`` overlay (ring plus chords;
    #: each LPM keeps about this many overlay links).
    sparse_degree: int = 6

    #: How long a failed LOCATE is remembered (the negative miss
    #: cache): repeat lookups of a process the overlay already failed
    #: to find are answered locally instead of re-flooding.  Only
    #: consulted under the ``"sparse"`` policy.
    locate_miss_ttl_ms: float = 30_000.0

    #: How long a cache-first LOCATE probe (unicast along a cached
    #: route) waits before falling back to the broadcast flood.
    locate_probe_timeout_ms: float = 2_000.0

    #: Transport between sibling LPMs: ``"stream"`` (the paper's TCP
    #: virtual circuits) or ``"datagram"`` (the scalability alternative
    #: discussed in section 3; per-message authentication, no kept
    #: connections, ARQ reliability).
    transport: str = "stream"

    #: Whether co-located LPMs of *different* users share one physical
    #: inter-host circuit per host pair (multi-tenant mode): the first
    #: LPM to need ``(host_a, host_b)`` opens the circuit, later LPMs
    #: attach per-user lanes demultiplexed by ``Message.lane``.  Off by
    #: default — single-tenant runs stay byte-identical on the wire.
    #: Only meaningful with the ``"stream"`` transport.
    circuit_sharing: bool = False

    #: Datagram-transport retransmission timeout and retry budget.
    datagram_rto_ms: float = 400.0
    datagram_max_retries: int = 5

    #: Keepalive interval under the datagram transport.  Circuits learn
    #: of a dead peer from the broken connection; datagrams have no
    #: connection to break, so liveness must be probed (the flip side of
    #: "TCP connections are also needed to assure message delivery",
    #: section 3).
    datagram_keepalive_ms: float = 15_000.0

    #: Where the crash coordinator comes from: ``"recovery_file"`` (the
    #: paper's implemented design, section 5) or ``"name_server"`` (the
    #: alternative section 5 sketches: "LPMs would query the name server
    #: for a CCS.  The mechanism based on .recovery files would not be
    #: needed").
    ccs_source: str = "recovery_file"

    #: Host running the CCS name server when ``ccs_source`` selects it.
    name_server_host: Optional[str] = None

    #: Whether the process manager daemon persists its LPM registry to
    #: (simulated) stable storage.  The paper describes this as a possible
    #: but unimplemented improvement that "would certainly add to the
    #: overhead of creating LPMs" (section 5).
    pmd_stable_storage: bool = False

    #: Extra cost charged to LPM creation when ``pmd_stable_storage`` is on.
    pmd_stable_storage_write_ms: float = 45.0

    #: Default trace granularity for adopted processes, as flag names from
    #: :mod:`repro.tracing.events` (section 2: "accept parameters that
    #: determine the amount of process events recorded").
    default_trace_flags: Tuple[str, ...] = field(
        default=("fork", "exec", "exit", "signal", "state"))

    def __post_init__(self) -> None:
        if self.lpm_time_to_live_ms <= 0:
            raise ConfigError("lpm_time_to_live_ms must be positive")
        if self.time_to_die_ms <= 0:
            raise ConfigError("time_to_die_ms must be positive")
        if self.broadcast_dedup_window_ms < 0:
            raise ConfigError("broadcast_dedup_window_ms must be >= 0")
        if self.ccs_probe_interval_ms <= 0:
            raise ConfigError("ccs_probe_interval_ms must be positive")
        if self.recovery_retry_interval_ms <= 0:
            raise ConfigError("recovery_retry_interval_ms must be positive")
        if self.handler_pool_max < 1:
            raise ConfigError("handler_pool_max must be at least 1")
        if self.request_timeout_ms <= 0:
            raise ConfigError("request_timeout_ms must be positive")
        if self.topology_policy not in ("on_demand", "full_mesh",
                                        "sparse"):
            raise ConfigError(
                "topology_policy must be 'on_demand', 'full_mesh', or "
                "'sparse', got %r" % (self.topology_policy,))
        if self.sparse_degree < 2:
            raise ConfigError("sparse_degree must be at least 2")
        if self.locate_miss_ttl_ms < 0:
            raise ConfigError("locate_miss_ttl_ms must be >= 0")
        if self.locate_probe_timeout_ms <= 0:
            raise ConfigError("locate_probe_timeout_ms must be positive")
        if self.transport not in ("stream", "datagram"):
            raise ConfigError(
                "transport must be 'stream' or 'datagram', got %r"
                % (self.transport,))
        if self.ccs_source not in ("recovery_file", "name_server"):
            raise ConfigError(
                "ccs_source must be 'recovery_file' or 'name_server', "
                "got %r" % (self.ccs_source,))
        if self.ccs_source == "name_server" and not self.name_server_host:
            raise ConfigError(
                "ccs_source='name_server' requires name_server_host")

    def with_overrides(self, **kwargs) -> "PPMConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


#: Shared default configuration.
DEFAULT_CONFIG = PPMConfig()
