#!/usr/bin/env python
"""Documentation lint: links, package coverage, CLI coverage.

Three checks keep the docs from rotting as the codebase grows:

1. **Link validity** — every relative markdown link in every tracked
   ``*.md`` file must point at a file (or directory) that exists.
   External links (``http://``, ``https://``, ``mailto:``) and pure
   in-page anchors (``#...``) are ignored, as are links inside fenced
   code blocks.

2. **Package coverage** — every package under ``src/repro/`` must be
   mentioned (as ``repro.<name>``) in ``DESIGN.md`` or somewhere under
   ``docs/``, so no subsystem exists without a paragraph of
   architecture documentation.

3. **CLI coverage** — every subcommand registered in
   ``src/repro/cli.py`` (each ``add_parser("<name>")`` call) must be
   mentioned as ``repro <name>`` somewhere under ``docs/``, so no
   operator entry point ships undocumented (the CLI-surface table in
   ``docs/OPERATIONS.md`` is the natural home).

Run from the repo root::

    python tools/check_docs.py

Exit status 0 when clean, 1 with one line per violation otherwise.
"""

from __future__ import annotations

import os
import re
import sys
from typing import Iterator, List, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Directories never scanned for markdown (generated output, VCS, envs).
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules",
             ".venv", "venv", "results"}

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^\s*(```|~~~)")


def markdown_files() -> Iterator[str]:
    """Every ``*.md`` file in the repo, skipping generated trees."""
    for dirpath, dirnames, filenames in os.walk(REPO_ROOT):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for filename in sorted(filenames):
            if filename.endswith(".md"):
                yield os.path.join(dirpath, filename)


def links_in(path: str) -> Iterator[Tuple[int, str]]:
    """``(line_number, target)`` for every link outside code fences."""
    in_fence = False
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if _FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in _LINK.finditer(line):
                yield lineno, match.group(1)


def check_links() -> List[str]:
    errors: List[str] = []
    for path in markdown_files():
        rel = os.path.relpath(path, REPO_ROOT)
        for lineno, target in links_in(path):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path),
                             target.split("#", 1)[0]))
            if not os.path.exists(resolved):
                errors.append("%s:%d: broken link %r" % (rel, lineno, target))
    return errors


def check_package_coverage() -> List[str]:
    src = os.path.join(REPO_ROOT, "src", "repro")
    packages = sorted(
        name for name in os.listdir(src)
        if os.path.isdir(os.path.join(src, name))
        and os.path.exists(os.path.join(src, name, "__init__.py")))

    corpus = []
    design = os.path.join(REPO_ROOT, "DESIGN.md")
    if os.path.exists(design):
        corpus.append(design)
    docs = os.path.join(REPO_ROOT, "docs")
    if os.path.isdir(docs):
        corpus += [os.path.join(docs, f) for f in sorted(os.listdir(docs))
                   if f.endswith(".md")]
    text = ""
    for path in corpus:
        with open(path, "r", encoding="utf-8") as handle:
            text += handle.read()

    errors: List[str] = []
    for package in packages:
        if "repro.%s" % package not in text:
            errors.append(
                "package repro.%s is not mentioned in DESIGN.md or docs/"
                % package)
    return errors


_ADD_PARSER = re.compile(r"add_parser\(\s*[\"']([^\"']+)[\"']")


def check_cli_coverage() -> List[str]:
    cli = os.path.join(REPO_ROOT, "src", "repro", "cli.py")
    if not os.path.exists(cli):
        return []
    with open(cli, "r", encoding="utf-8") as handle:
        subcommands = sorted(set(_ADD_PARSER.findall(handle.read())))

    text = ""
    docs = os.path.join(REPO_ROOT, "docs")
    if os.path.isdir(docs):
        for name in sorted(os.listdir(docs)):
            if name.endswith(".md"):
                with open(os.path.join(docs, name), "r",
                          encoding="utf-8") as handle:
                    text += handle.read()

    errors: List[str] = []
    for subcommand in subcommands:
        if "repro %s" % subcommand not in text:
            errors.append(
                "CLI subcommand %r is not documented as 'repro %s' "
                "anywhere under docs/" % (subcommand, subcommand))
    return errors


def main() -> int:
    errors = check_links() + check_package_coverage() + \
        check_cli_coverage()
    for error in errors:
        print("docs: %s" % error)
    if errors:
        return 1
    print("docs: ok (%d markdown files, all links valid, all packages "
          "and CLI subcommands documented)"
          % sum(1 for _ in markdown_files()))
    return 0


if __name__ == "__main__":
    sys.exit(main())
