#!/usr/bin/env python
"""CI smoke drill for ``repro doctor`` against a live serve fleet.

The whole operational loop, end to end, on real sockets:

1. launch three ``repro serve`` OS processes sharing one registry;
2. ``repro doctor`` must report **healthy** (exit 0);
3. create a real process through a session (so an LPM exists);
4. SIGKILL one serve process — the incident;
5. ``repro doctor`` must now exit **10** naming ``daemon-liveness``
   (the same verdict the netsim backend gives a crashed host), and
   flag the corpse's registry entry as stale.

Run from the repo root::

    PYTHONPATH=src python tools/doctor_real_smoke.py

Exit status 0 when every step behaves, 1 with a diagnostic otherwise.
"""

from __future__ import annotations

import os
import signal
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.cli import main as repro_main  # noqa: E402
from repro.ops import EXIT_CODES, probe_fleet, run_doctor  # noqa: E402
from repro.realnet.session import RealSession, launch_hosts  # noqa: E402

HOSTS = ["alpha", "beta", "gamma"]
VICTIM = "gamma"


def fail(message: str) -> int:
    print("doctor-smoke: FAIL — %s" % message)
    return 1


def reap_marked_orphans(stage: str) -> None:
    """Kill marked PPM orphans so one drill's leftovers (or an earlier
    crashed run's) cannot fail the next drill's healthy sweep."""
    from repro.localos.procfs import find_marked_orphans
    for orphan in find_marked_orphans():
        try:
            os.kill(orphan["pid"], signal.SIGKILL)
            print("doctor-smoke: reaped %s orphan pid %d"
                  % (stage, orphan["pid"]))
        except OSError:
            pass


def run() -> int:
    reap_marked_orphans("leftover")
    print("doctor-smoke: launching %d serve processes ..." % len(HOSTS))
    with launch_hosts(HOSTS, budget_s=120.0) as fleet:
        code = repro_main(["doctor", "--registry", fleet.registry_path,
                           "--hosts"] + HOSTS)
        if code != 0:
            return fail("healthy fleet should exit 0, got %d" % code)
        print("doctor-smoke: healthy fleet verdict ok (exit 0)")

        with RealSession(fleet.registry_path, user="smoke",
                         host_name=HOSTS[0]) as session:
            client = session.client.connect()
            created = client.create_process("drill", host=VICTIM)
            print("doctor-smoke: created %s (real pid %d)"
                  % (created, created.pid))

            victim = fleet.processes[HOSTS.index(VICTIM)]
            victim.send_signal(signal.SIGKILL)
            victim.wait()
            time.sleep(0.2)
            print("doctor-smoke: SIGKILLed serve %r" % VICTIM)

            code = repro_main(["doctor", "--registry",
                               fleet.registry_path, "--hosts"] + HOSTS)
            if code != EXIT_CODES["daemon-liveness"]:
                return fail("killed fleet should exit %d "
                            "(daemon-liveness), got %d"
                            % (EXIT_CODES["daemon-liveness"], code))

            view = probe_fleet(fleet.registry_path, expected_hosts=HOSTS)
            report = run_doctor(view)
            failing = [result.name for result in report.failing]
            if failing[0] != "daemon-liveness":
                return fail("first failing check should be "
                            "daemon-liveness, got %r" % failing)
            if "registry-staleness" not in failing:
                return fail("stale registry entry for %r not flagged "
                            "(failing: %r)" % (VICTIM, failing))
            print("doctor-smoke: incident verdict ok "
                  "(exit %d, failing: %s)" % (report.exit_code,
                                              ", ".join(failing)))

    reap_marked_orphans("drill")
    print("doctor-smoke: ok")
    return 0


if __name__ == "__main__":
    sys.exit(run())
