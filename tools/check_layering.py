#!/usr/bin/env python
"""Layering lint for the decomposed LPM.

``repro.core.lpm`` used to be a god-class owning transport, RPC,
routing, and gather machinery in one file.  That machinery now lives in
dedicated layer modules, and this lint keeps the decomposition from
eroding:

1. ``lpm.py`` stays a coordinator: at most ``LPM_MAX_LINES`` lines.
2. ``lpm.py`` imports only from its allowlist — in particular it must
   never again import ``repro.netsim.stream`` or ``repro.core.dgram``
   (sockets belong to the transport layer) or ``repro.core.routing``
   (the route cache belongs to the router layer).
3. The layer modules never import ``repro.core.lpm`` — the layering is
   one-directional; layers talk to the LPM only through the instance
   injected at construction.
4. ``rpc`` / ``router`` / ``gather`` never import the socket layers
   either; only ``transport`` touches streams and datagrams.

The simulator substrate gets its own rules:

5. ``repro.netsim`` is the bottom layer: no module in it may import
   upward (``repro.core``, ``repro.unixsim``, ``repro.tracing``, ...).
   The lockstep shard machinery made this newly easy to get wrong —
   worker harnesses coordinate whole-world scenarios and the pull to
   reach up for PPM types is real.
6. Only ``netsim/parallel.py`` may import ``multiprocessing``: the
   process-forking seam stays in the coordinator so every other module
   remains testable single-process.

The backend abstraction (``repro.core.fabric``) adds its own rules:

7. **No module in ``repro.core`` imports ``repro.netsim``, ever.**
   The protocol stack sees backends only through the fabric contract;
   the one adapter binding netsim to that contract lives in
   ``netsim/fabric.py`` (below the seam, duck-typed).  This is the
   rule that keeps the same stack runnable over real sockets.
8. Real-network primitives stay in their backends: ``asyncio`` /
   ``socket`` / ``selectors`` may be imported only by ``repro.realnet``
   (and ``socket`` by ``repro.localos``, which names real hosts).  The
   simulator, the protocol stack, and the tools stay loadable — and
   deterministic — without ever touching a socket API.
9. ``repro.realnet`` never imports ``repro.netsim``: the two backends
   are siblings and must not entangle.  (The shared service-name
   constants live in ``repro.unixsim.inetd``, which realnet may use.)

Run from the repo root::

    python tools/check_layering.py

Exit status 0 when clean, 1 with one line per violation otherwise.
"""

from __future__ import annotations

import ast
import os
import sys
from typing import List, Sequence, Set

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CORE = os.path.join(REPO_ROOT, "src", "repro", "core")
CORE_PACKAGE = "repro.core"
NETSIM = os.path.join(REPO_ROOT, "src", "repro", "netsim")
NETSIM_PACKAGE = "repro.netsim"
SRC_ROOT = os.path.join(REPO_ROOT, "src", "repro")
REALNET = os.path.join(SRC_ROOT, "realnet")

#: Real-network primitives; only the packages named in
#: :data:`NETWORK_API_ALLOWED` may import them (rule 8).
NETWORK_APIS = ("asyncio", "socket", "selectors", "ssl")

#: package (relative to ``repro``) -> network APIs it may import.
NETWORK_API_ALLOWED = {
    "realnet": ("asyncio", "socket", "selectors", "ssl"),
    "localos": ("socket",),
}

#: Packages above netsim in the layer diagram (DESIGN.md §6); nothing
#: in the simulator substrate may import them.
NETSIM_UPWARD = ("repro.core", "repro.unixsim", "repro.tracing",
                 "repro.baselines", "repro.localos", "repro.bench",
                 "repro.cli")

#: The one netsim module allowed to fork worker processes.
NETSIM_FORKING_MODULE = "parallel"

#: Raised from 600 when the sparse-overlay work added cache-first
#: LOCATE (probe / flood split) and the tree/topology dispatch rows to
#: the coordinator; the mechanisms themselves live in
#: ``spantree.py`` / ``topology.py``.  Raised again to 665 for the
#: shard-ownership stamps (``owner=self.name`` on the coordinator's
#: own timers — one argument per schedule site, no new logic).
LPM_MAX_LINES = 665

#: The modules extracted out of the god-class.  None may import lpm.
LAYER_MODULES = ("transport", "rpc", "router", "gather",
                 "processtable", "toolservice", "spantree", "topology",
                 "circuitpool")

#: Modules that must not touch the socket layers (transport owns them).
SOCKET_FREE_MODULES = ("rpc", "router", "gather", "spantree", "topology")
SOCKET_LAYERS = ("repro.netsim.stream", "repro.core.dgram")

#: Every import prefix lpm.py may use.  Anything else is the god-class
#: growing back; move the code into the owning layer instead.
LPM_ALLOWED_PREFIXES = (
    "__future__",
    "typing",
    "repro.errors",
    "repro.ids",
    "repro.latency",
    "repro.perf",
    "repro.tracing.events",
    "repro.unixsim.process",
    "repro.util",
    "repro.core.broadcast",
    "repro.core.control",
    "repro.core.dispatcher",
    "repro.core.gather",
    "repro.core.messages",
    "repro.core.processtable",
    "repro.core.recovery",
    "repro.core.router",
    "repro.core.rpc",
    "repro.core.spantree",
    "repro.core.toolservice",
    "repro.core.topology",
    "repro.core.transport",
)


def module_imports(path: str, package: str) -> Set[str]:
    """Absolute dotted names imported anywhere in the file.

    Relative imports are resolved against ``package`` (the package the
    file lives in).  ``from X import y`` contributes both ``X`` and
    ``X.y`` so submodule imports are caught either way they are spelt.
    """
    with open(path, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)
    found: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                found.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                parts = package.split(".")
                kept = parts[:len(parts) - node.level + 1]
                base = ".".join(kept)
                if node.module:
                    base = "%s.%s" % (base, node.module) if base \
                        else node.module
            else:
                base = node.module or ""
            if base:
                found.add(base)
            for alias in node.names:
                found.add("%s.%s" % (base, alias.name) if base
                          else alias.name)
    return found


def _matches(name: str, prefixes: Sequence[str]) -> bool:
    return any(name == prefix or name.startswith(prefix + ".")
               for prefix in prefixes)


def check() -> List[str]:
    errors: List[str] = []

    # Rule 1: line cap on the coordinator.
    lpm_path = os.path.join(CORE, "lpm.py")
    with open(lpm_path, "r", encoding="utf-8") as handle:
        n_lines = sum(1 for _ in handle)
    if n_lines > LPM_MAX_LINES:
        errors.append("lpm.py is %d lines (cap %d): the coordinator is "
                      "growing back into a god-class" %
                      (n_lines, LPM_MAX_LINES))

    # Rule 2: lpm.py import allowlist.
    for name in sorted(module_imports(lpm_path, CORE_PACKAGE)):
        if not _matches(name, LPM_ALLOWED_PREFIXES):
            errors.append("lpm.py imports %r, which is outside the "
                          "coordinator allowlist" % (name,))

    # Rules 3 and 4: the layers stay below the coordinator.
    for module in LAYER_MODULES:
        path = os.path.join(CORE, "%s.py" % module)
        imports = module_imports(path, CORE_PACKAGE)
        for name in sorted(imports):
            if _matches(name, ("repro.core.lpm",)):
                errors.append("%s.py imports %r: layers must not import "
                              "upward into the coordinator" %
                              (module, name))
            if module in SOCKET_FREE_MODULES and \
                    _matches(name, SOCKET_LAYERS):
                errors.append("%s.py imports %r: only the transport "
                              "layer may touch sockets" % (module, name))

    # Rules 5 and 6: the simulator substrate stays at the bottom.
    for filename in sorted(os.listdir(NETSIM)):
        if not filename.endswith(".py"):
            continue
        module = filename[:-3]
        imports = module_imports(os.path.join(NETSIM, filename),
                                 NETSIM_PACKAGE)
        for name in sorted(imports):
            if _matches(name, NETSIM_UPWARD):
                errors.append("netsim/%s imports %r: netsim is the "
                              "bottom layer and must not import upward"
                              % (filename, name))
            if _matches(name, ("multiprocessing",)) and \
                    module != NETSIM_FORKING_MODULE:
                errors.append("netsim/%s imports multiprocessing: the "
                              "process-forking seam belongs to "
                              "parallel.py alone" % (filename,))

    # Rule 7: the protocol stack never reaches below the fabric seam.
    for filename in sorted(os.listdir(CORE)):
        if not filename.endswith(".py"):
            continue
        imports = module_imports(os.path.join(CORE, filename),
                                 CORE_PACKAGE)
        for name in sorted(imports):
            if _matches(name, ("repro.netsim",)):
                errors.append("core/%s imports %r: the protocol stack "
                              "must depend only on the fabric contract "
                              "(repro.core.fabric), never on a backend"
                              % (filename, name))

    # Rule 8: real-network primitives confined to their backends.
    for dirpath, dirnames, filenames in os.walk(SRC_ROOT):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        relative = os.path.relpath(dirpath, SRC_ROOT)
        top = "" if relative == "." else relative.split(os.sep)[0]
        allowed = NETWORK_API_ALLOWED.get(top, ())
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            package = "repro" if relative == "." else \
                "repro." + relative.replace(os.sep, ".")
            imports = module_imports(os.path.join(dirpath, filename),
                                     package)
            for name in sorted(imports):
                if _matches(name, NETWORK_APIS) and \
                        not _matches(name, allowed):
                    errors.append(
                        "%s imports %r: real-network APIs are confined "
                        "to repro.realnet (socket also to repro."
                        "localos)" % (os.path.join(
                            relative, filename).lstrip("./"), name))

    # Rule 9: the backends stay siblings.
    for filename in sorted(os.listdir(REALNET)):
        if not filename.endswith(".py"):
            continue
        imports = module_imports(os.path.join(REALNET, filename),
                                 "repro.realnet")
        for name in sorted(imports):
            if _matches(name, ("repro.netsim",)):
                errors.append("realnet/%s imports %r: the backends must "
                              "not entangle" % (filename, name))
    return errors


def main() -> int:
    errors = check()
    for error in errors:
        print("layering: %s" % error)
    if errors:
        return 1
    print("layering: ok (lpm.py and %d layer modules clean)" %
          len(LAYER_MODULES))
    return 0


if __name__ == "__main__":
    sys.exit(main())
