#!/usr/bin/env python
"""Counter-inventory lint: no undocumented perf counters.

Every slot on :class:`repro.perf.counters.PerfCounters` must appear

1. in the counter-inventory section of the ``repro.perf.counters``
   module docstring (double-backquoted, with a description), and
2. in ``docs/PERF.md``,

so the inventory cannot silently drift as new subsystems add counters
(the span-tracing layer alone added three).  The reverse direction is
checked too: a counter documented in either place but missing from the
registry is stale documentation.

Run from the repo root::

    python tools/check_counters.py

Exit status 0 when clean, 1 with one line per violation otherwise.
"""

from __future__ import annotations

import os
import sys
from typing import List

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

import re

from repro.perf import counters as counters_module  # noqa: E402

#: Double-backquoted identifiers, the docstring inventory's convention.
_DOCSTRING_NAME = re.compile(r"^``(\w+)``\s*$", re.MULTILINE)


def check() -> List[str]:
    errors: List[str] = []
    slots = list(counters_module._COUNTERS)
    docstring = counters_module.__doc__ or ""
    documented = set(_DOCSTRING_NAME.findall(docstring))

    perf_md_path = os.path.join(REPO_ROOT, "docs", "PERF.md")
    try:
        with open(perf_md_path, "r", encoding="utf-8") as handle:
            perf_md = handle.read()
    except OSError as exc:
        return ["cannot read docs/PERF.md: %s" % (exc,)]

    for name in slots:
        if name not in documented:
            errors.append(
                "counter %r missing from the repro.perf.counters "
                "docstring inventory" % (name,))
        if "`%s`" % name not in perf_md and name not in perf_md:
            errors.append(
                "counter %r missing from docs/PERF.md" % (name,))
    for name in sorted(documented):
        if name not in slots:
            errors.append(
                "docstring inventory documents %r, which is not a "
                "PerfCounters slot" % (name,))
    return errors


def main() -> int:
    errors = check()
    for error in errors:
        print("counters: %s" % error)
    if errors:
        return 1
    print("counters: ok (%d counters, docstring inventory and "
          "docs/PERF.md both complete)"
          % len(counters_module._COUNTERS))
    return 0


if __name__ == "__main__":
    sys.exit(main())
