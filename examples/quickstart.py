#!/usr/bin/env python3
"""Quickstart: a personal process manager across three machines.

Builds a small simulated Berkeley network, starts a PPM session, creates
a computation that spans hosts, takes a genealogical snapshot, controls
a remote process, and prints resource statistics — the two tools the
paper's implementation shipped with (section 6).

Run:  python examples/quickstart.py
"""

from repro import (
    ControlAction,
    HostClass,
    PersonalProcessManager,
    World,
    spinner_spec,
    worker_spec,
)
from repro.core.rstats import render_report
from repro.tracing import render_forest


def main() -> None:
    # --- the network: three machines on one Ethernet -----------------
    world = World(seed=42)
    world.add_host("ucbvax", HostClass.VAX_780)
    world.add_host("ucbarpa", HostClass.VAX_750)
    world.add_host("ucbernie", HostClass.SUN_2)
    world.ethernet()
    world.add_user("lfc", uid=1001)

    # --- invoke the mechanism (Figure 2's four steps happen here) ----
    ppm = PersonalProcessManager(world, "lfc", "ucbvax",
                                 recovery_hosts=["ucbvax", "ucbarpa"])
    ppm.start()
    print("session established on ucbvax; CCS is %s\n"
          % ppm.session_info()["ccs_host"])

    # --- a computation spanning three hosts --------------------------
    root = ppm.create_process("coordinator", program=spinner_spec(None))
    solver_a = ppm.create_process("solver", host="ucbarpa", parent=root,
                                  program=spinner_spec(None))
    solver_b = ppm.create_process("solver", host="ucbernie", parent=root,
                                  program=spinner_spec(None))
    ppm.create_process("logger", host="ucbarpa", parent=root,
                       program=worker_spec(2_000.0))
    world.run_for(5_000.0)  # the logger finishes

    # --- the snapshot tool -------------------------------------------
    print(render_forest(ppm.snapshot()))
    print("\ncomputation executes on: %s\n"
          % ", ".join(ppm.execution_sites(root)))

    # --- process control across machine boundaries -------------------
    print("stopping the solver on ucbernie...")
    ppm.control(solver_b, ControlAction.STOP)
    print(render_forest(ppm.snapshot()))

    print("\nstopping the whole computation, then killing it...")
    ppm.stop_computation(root)
    ppm.kill_computation(root)
    world.run_for(1_000.0)

    # --- exited-process resource consumption statistics --------------
    print()
    print(render_report(ppm.rstats_report()))

    del solver_a  # (identity shown in the snapshot above)


if __name__ == "__main__":
    main()
