#!/usr/bin/env python3
"""Health checking: the doctor, its checks, and operational triggers.

Builds a small network, arms the standard operational triggers
(``repro.ops.triggers``), and runs ``repro doctor``'s check sweep
three times: against the healthy world, after a host crash, and after
stranding an orphan process.  Each report names the failing check in
triage order and carries a distinct exit code — the contract scripts
and CI match on (see ``docs/OPERATIONS.md``).

Run:  python examples/doctor_demo.py
"""

from repro import (
    HostClass,
    PersonalProcessManager,
    TriggerEngine,
    World,
)
from repro.ops import install_ops_triggers, probe_world, run_doctor


def show(title, report):
    print("--- %s " % title + "-" * max(0, 50 - len(title)))
    print(report.render())
    print()


def main() -> None:
    # --- the network: three machines, one user, one PPM session ------
    world = World(seed=9)
    for name in ("home", "compute1", "compute2"):
        world.add_host(name, HostClass.VAX_780)
    world.ethernet()
    world.add_user("lfc", uid=1001)
    world.add_user("guest", uid=1002)
    ppm = PersonalProcessManager(world, "lfc", "home",
                                 recovery_hosts=["home", "compute1"])
    ppm.enable_span_tracing()
    ppm.start()

    # --- arm the standard operational triggers -----------------------
    engine = TriggerEngine(world.recorder)
    alerts = install_ops_triggers(engine)

    ppm.create_process("coordinator", host="home")
    ppm.create_process("solver", host="compute1")
    ppm.create_process("solver", host="compute2")
    world.run_for(2_000.0)

    # --- sweep 1: a healthy computation ------------------------------
    report = run_doctor(probe_world(world, alerts=alerts))
    show("healthy", report)

    # --- sweep 2: a crashed host (and the host-down trigger) ---------
    world.host("compute2").crash()
    world.run_for(10_000.0)  # let the failure detector notice
    report = run_doctor(probe_world(world, alerts=alerts))
    show("after crashing compute2", report)
    print("exit code: %d (first failing check %r)\n"
          % (report.exit_code, report.failing[0].name))

    # --- sweep 3: an orphaned process --------------------------------
    # A process started outside any LPM's administration (guest has no
    # PPM session anywhere): the doctor flags it even though every
    # daemon and LPM is healthy.
    world.host("compute1").spawn_user_process("guest", "stray-job")
    report = run_doctor(probe_world(world, alerts=alerts))
    show("after stranding a process", report)

    engine.close()


if __name__ == "__main__":
    main()
