#!/usr/bin/env python3
"""The PPM outlives the login session.

Section 4: "The PPM will outlive a user login session if processes
created by that user remain active ... a user's request for a LPM
following a new login will yield an existing one.  This simple scheme
allows users to regain knowledge and control of all of the processes
that have been created under the PPM mechanism in the past and are
still alive."

A user starts overnight simulations, logs out, and logs in the next
morning on a *different* machine — regaining the whole computation,
plus the history recorded while they were away.

Run:  python examples/session_persistence.py
"""

from repro import (
    ControlAction,
    HostClass,
    PersonalProcessManager,
    TraceEventType,
    World,
    fork_tree_spec,
    spinner_spec,
    worker_spec,
)
from repro.tracing import render_forest
from repro.tracing.reduction import event_counts


def main() -> None:
    world = World(seed=11)
    for name in ("office", "machineA", "machineB"):
        world.add_host(name, HostClass.VAX_780)
    world.ethernet()
    world.add_user("lfc", uid=1001)

    # --- evening: start the overnight runs, then log out -------------
    ppm = PersonalProcessManager(world, "lfc", "office",
                                 recovery_hosts=["office"])
    ppm.start()
    batch = ppm.create_process(
        "overnight-batch",
        program=fork_tree_spec(
            [("preprocess", 100.0, worker_spec(240_000.0)),  # 4 sim-min
             ("mainloop", 200.0, spinner_spec(None))]))
    ppm.create_process("sweep-a", host="machineA", parent=batch,
                       program=spinner_spec(None))
    ppm.create_process("sweep-b", host="machineB", parent=batch,
                       program=spinner_spec(None))
    print("before logout:")
    print(render_forest(ppm.snapshot()))
    ppm.logout()
    print("\n(logged out)")

    # --- overnight: eight simulated hours pass -----------------------
    world.run_for(8 * 3600 * 1000.0)

    # --- morning: a new login on a different machine ------------------
    client = ppm.relogin("machineA")
    print("\nlogged in on machineA the next morning; the LPMs persisted:")
    forest = client.snapshot()
    print(render_forest(forest))

    # The preprocess step finished while logged out; its exit record
    # was preserved and the history is queryable.
    exits = world.recorder.select(TraceEventType.EXIT)
    print("\nexits recorded while logged out: %d" % len(exits))
    counts = event_counts(world.recorder.events)
    print("session event counts: fork=%s exit=%s kernel messages=%s"
          % (counts.get("fork", 0), counts.get("exit", 0),
             counts.get("kernel_message", 0)))

    # Full control is regained: stop the sweep on the other machine.
    sweep_b = next(gpid for gpid, record in forest.records.items()
                   if record.command == "sweep-b")
    client.control(sweep_b, ControlAction.STOP)
    print("\nstopped %s from machineA; final state:" % (sweep_b,))
    print(render_forest(client.snapshot()))


if __name__ == "__main__":
    main()
