#!/usr/bin/env python3
"""The PPM on real processes — single-host, then a live network.

Part 1 drives the single-host semantics the simulator models —
creation as a managed server, control by signal, genealogy, retained
exit records — against the actual Linux kernel via ``subprocess``,
signals, and ``/proc`` (the "processes as files" mechanism of
section 6).

Part 2 stands up a *distributed* PPM: three serve processes (one per
overlay host, each an asyncio TCP listener on an ephemeral port), then
runs the same ``PPMClient`` the simulator uses — bootstrap through a
real inetd/pmd, process creation across a machine boundary, locate,
stop/continue by real signal, a cross-host genealogical snapshot, and
clean teardown.  See ``docs/BACKENDS.md``.

Run:  python examples/real_processes.py        (Linux only)
"""

import sys
import time

from repro import ControlAction
from repro.core.rstats import build_report, render_report
from repro.localos import RealBackend
from repro.tracing import render_forest

PY = sys.executable


def wait_for(predicate, timeout_s=10.0):
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return False


def single_host() -> None:
    with RealBackend() as backend:
        print("managing real processes on %s\n" % backend.host_name)

        # A computation: a shell that forks two sleeping children.
        root = backend.spawn(
            ["/bin/sh", "-c",
             "%s -c 'import time; time.sleep(60)' & "
             "%s -c 'import time; time.sleep(60)' & wait" % (PY, PY)],
            name="coordinator")
        worker = backend.spawn([PY, "-c",
                                "sum(i * i for i in range(3_000_000))"],
                               name="cruncher", parent=root)
        brief = backend.spawn([PY, "-c", "raise SystemExit(3)"],
                              name="flaky", parent=root)

        wait_for(lambda: len(
            backend.snapshot(prune=False).descendants(root)) >= 2)
        print("genealogical snapshot (from /proc):")
        print(render_forest(backend.snapshot(prune=False)))

        # Stop and continue the whole subtree with real signals.
        print("\nstopping the coordinator's computation...")
        backend.control_tree(root, ControlAction.STOP)
        wait_for(lambda: backend.state_of(root) == "stopped")
        print("coordinator state: %s" % backend.state_of(root))
        backend.control_tree(root, ControlAction.CONTINUE)
        wait_for(lambda: backend.state_of(root) in ("running", "sleeping"))
        print("continued; coordinator state: %s" % backend.state_of(root))

        # Let the short jobs finish, then show retained exit records.
        wait_for(lambda: backend.state_of(brief) == "exited")
        wait_for(lambda: backend.state_of(worker) == "exited",
                 timeout_s=30.0)
        print("\nexited-process resource statistics:")
        print(render_report(build_report(backend.rstats())))

        print("\nkilling the computation and shutting down.")
        backend.control_tree(root, ControlAction.KILL)


def distributed() -> None:
    from repro.realnet.session import RealSession, launch_hosts

    hosts = ["ucbvax", "ucbarpa", "ucbernie"]
    print("launching %d real host processes (asyncio TCP, ephemeral "
          "ports)..." % len(hosts))
    with launch_hosts(hosts, budget_s=120.0) as fleet:
        with RealSession(fleet.registry_path, user="lfc",
                         host_name="ucbvax") as session:
            client = session.client.connect()
            info = client.session_info()
            print("bootstrap complete: LPM for %s on %s "
                  "(accept service %s)"
                  % (info["user"], info["host"],
                     info["endpoints"]["accept"]))

            coordinator = client.create_process("coordinator")
            print("created %s — a real pid on the local host"
                  % (coordinator,))
            solver = client.create_process("solver", host="ucbernie",
                                           parent=coordinator)
            print("created %s — across a machine boundary (a sibling "
                  "channel to ucbernie was built and authenticated on "
                  "demand)" % (solver,))

            located = client.locate(solver)
            print("locate %s -> found=%s on %s (state %s)"
                  % (solver, located["found"], located["host"],
                     located.get("state", "?")))

            client.stop(solver)
            print("stopped %s by real SIGSTOP; state now %r"
                  % (solver, client.locate(solver).get("state")))
            client.cont(solver)
            print("continued %s; state now %r"
                  % (solver, client.locate(solver).get("state")))

            forest = client.snapshot(prune=False)
            print("\ncross-host genealogical snapshot "
                  "(%d records, hosts: %s):"
                  % (len(forest.records),
                     ", ".join(sorted({g.host for g in
                                       forest.records}))))
            print(render_forest(forest))

            for gpid in (solver, coordinator):
                client.kill(gpid)
            client.close()
    print("\nfleet torn down; registry withdrawn; no listeners left.")


def main() -> None:
    print("=" * 62)
    print("Part 1: one host, real processes (repro.localos)")
    print("=" * 62)
    single_host()
    print()
    print("=" * 62)
    print("Part 2: a live PPM over real TCP (repro.realnet)")
    print("=" * 62)
    distributed()


if __name__ == "__main__":
    main()
