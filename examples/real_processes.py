#!/usr/bin/env python3
"""The PPM's single-host semantics on real processes.

Everything the simulator models on one host — creation as a managed
server, control by signal, genealogy, retained exit records — driven
against the actual Linux kernel via ``subprocess``, signals, and
``/proc`` (the "processes as files" mechanism of section 6).

Run:  python examples/real_processes.py        (Linux only)
"""

import sys
import time

from repro import ControlAction
from repro.core.rstats import build_report, render_report
from repro.localos import RealBackend
from repro.tracing import render_forest

PY = sys.executable


def wait_for(predicate, timeout_s=10.0):
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return False


def main() -> None:
    with RealBackend() as backend:
        print("managing real processes on %s\n" % backend.host_name)

        # A computation: a shell that forks two sleeping children.
        root = backend.spawn(
            ["/bin/sh", "-c",
             "%s -c 'import time; time.sleep(60)' & "
             "%s -c 'import time; time.sleep(60)' & wait" % (PY, PY)],
            name="coordinator")
        worker = backend.spawn([PY, "-c",
                                "sum(i * i for i in range(3_000_000))"],
                               name="cruncher", parent=root)
        brief = backend.spawn([PY, "-c", "raise SystemExit(3)"],
                              name="flaky", parent=root)

        wait_for(lambda: len(
            backend.snapshot(prune=False).descendants(root)) >= 2)
        print("genealogical snapshot (from /proc):")
        print(render_forest(backend.snapshot(prune=False)))

        # Stop and continue the whole subtree with real signals.
        print("\nstopping the coordinator's computation...")
        backend.control_tree(root, ControlAction.STOP)
        wait_for(lambda: backend.state_of(root) == "stopped")
        print("coordinator state: %s" % backend.state_of(root))
        backend.control_tree(root, ControlAction.CONTINUE)
        wait_for(lambda: backend.state_of(root) in ("running", "sleeping"))
        print("continued; coordinator state: %s" % backend.state_of(root))

        # Let the short jobs finish, then show retained exit records.
        wait_for(lambda: backend.state_of(brief) == "exited")
        wait_for(lambda: backend.state_of(worker) == "exited",
                 timeout_s=30.0)
        print("\nexited-process resource statistics:")
        print(render_report(build_report(backend.rstats())))

        print("\nkilling the computation and shutting down.")
        backend.control_tree(root, ControlAction.KILL)


if __name__ == "__main__":
    main()
