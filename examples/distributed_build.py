#!/usr/bin/env python3
"""A distributed build farm with history-dependent triggers.

The workload the paper's introduction motivates: a multiple-process
program whose components execute on several machines, with "history
dependent events ... set by users to trigger process state changes"
(section 1).  A coordinator fans compile jobs out to worker hosts; a
trigger watches the event history and reacts to a crash-looping job by
stopping the whole computation.

Run:  python examples/distributed_build.py
"""

from repro import (
    HostClass,
    PersonalProcessManager,
    TraceEventType,
    Trigger,
    TriggerEngine,
    World,
    worker_spec,
)
from repro.core.rstats import render_report
from repro.tracing import HistoryStore, render_timeline
from repro.tracing.reduction import event_counts, process_lifetimes


def main() -> None:
    world = World(seed=7)
    hosts = ["master", "farm1", "farm2", "farm3"]
    for name in hosts:
        world.add_host(name, HostClass.VAX_780)
    world.ethernet()
    world.add_user("builder", uid=2001)

    ppm = PersonalProcessManager(world, "builder", "master",
                                 recovery_hosts=["master", "farm1"])
    ppm.start()

    # --- history store + trigger engine over the session's events ----
    history = HistoryStore()
    history.follow(world.recorder)
    engine = TriggerEngine(world.recorder, history=history)

    halted = []

    def halt_the_build(event) -> None:
        halted.append(event)
        print("  !! trigger fired at %.0f ms: third failure of %s within "
              "10 s -- stopping the build" % (event.time_ms, event.gpid))
        ppm.stop_computation(root)

    engine.add(Trigger(
        name="crash-loop-guard",
        event_type=TraceEventType.EXIT,
        predicate=lambda event, h: (
            event.details.get("status", 0) != 0
            and h.count_in_window(event.time_ms, 10_000.0,
                                  TraceEventType.EXIT) >= 3),
        action=halt_the_build,
        once=True))

    # --- the build: a coordinator plus per-host compile jobs ---------
    root = ppm.create_process("build-coordinator",
                              program=worker_spec(120_000.0))
    for index, host in enumerate(("farm1", "farm2", "farm3")):
        ppm.create_process("cc-unit%d" % index, host=host, parent=root,
                           program=worker_spec(4_000.0 + 500.0 * index))
    # One unit is broken and crash-loops (exits nonzero repeatedly).
    for attempt in range(3):
        ppm.create_process("cc-broken", host="farm2", parent=root,
                           program=worker_spec(1_500.0 + 200 * attempt,
                                               exit_status=1))

    print("build running on: %s\n" % ", ".join(ppm.execution_sites(root)))
    world.run_for(30_000.0)

    assert halted, "the crash-loop trigger should have fired"
    print("\nbuild state after the trigger:")
    forest = ppm.snapshot(prune=False)
    stopped = [r for r in forest.records.values() if r.state == "stopped"]
    print("  %d processes stopped by the trigger" % len(stopped))

    # --- what the historical record can tell the user ----------------
    print("\nevent counts for the session:")
    for name, count in sorted(event_counts(history.all_events()).items()):
        print("  %-22s %d" % (name, count))

    lifetimes = process_lifetimes(history.all_events())
    finished = {g: (start, end) for g, (start, end) in lifetimes.items()
                if end is not None}
    print("\n%d processes have complete lifetimes in the history"
          % len(finished))

    print("\nrecent trace events:")
    print(render_timeline(history.events_of_type(TraceEventType.EXIT),
                          limit=6))

    print()
    print(render_report(ppm.rstats_report()))


if __name__ == "__main__":
    main()
