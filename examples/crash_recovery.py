#!/usr/bin/env python3
"""Crash recovery: the CCS, the .recovery list, and network partitions.

Walks through section 5's machinery live: a host crash detected over
broken channels, the search down the user's ``.recovery`` priority
list, a stand-in crash coordinator probing "at a low frequency" for the
real one, and the merge after the network heals.

Run:  python examples/crash_recovery.py
"""

from repro import (
    HostClass,
    PPMConfig,
    PersonalProcessManager,
    TraceEventType,
    World,
    spinner_spec,
)


RECOVERY_EVENTS = (
    TraceEventType.FAILURE_DETECTED,
    TraceEventType.CCS_SEARCH,
    TraceEventType.CCS_ASSUMED,
    TraceEventType.CCS_CONTACTED,
    TraceEventType.CCS_PROBE,
    TraceEventType.CCS_RELINQUISHED,
    TraceEventType.TIME_TO_DIE_ARMED,
    TraceEventType.RECOVERY_RESUMED,
)


def print_recovery_log(world, since_ms=0.0) -> float:
    for event in world.recorder.events:
        if event.time_ms >= since_ms and event.event_type in RECOVERY_EVENTS:
            print("  [%8.0f ms] %-18s %-8s %s"
                  % (event.time_ms, event.event_type.value, event.host,
                     event.details))
    return world.now_ms


def main() -> None:
    config = PPMConfig(ccs_probe_interval_ms=5_000.0,
                       recovery_retry_interval_ms=4_000.0,
                       time_to_die_ms=120_000.0,
                       request_timeout_ms=8_000.0)
    world = World(seed=3, config=config)
    for name in ("home", "second", "compute1", "compute2"):
        world.add_host(name, HostClass.VAX_780)
    world.ethernet()
    world.add_user("lfc", uid=1001)

    # The .recovery file: home machines in decreasing priority.
    ppm = PersonalProcessManager(world, "lfc", "home",
                                 recovery_hosts=["home", "second"])
    ppm.start()
    for host in ("second", "compute1", "compute2"):
        ppm.create_process("sim-%s" % host, host=host,
                           program=spinner_spec(None))
    print("session up; CCS = %s" % ppm.session_info()["ccs_host"])
    mark = world.now_ms

    # ------------------------------------------------------------------
    print("\n=== the CCS host crashes ===")
    world.host("home").crash()
    world.run_for(40_000.0)
    mark = print_recovery_log(world, mark)
    second = world.lpms[("second", "lfc")]
    print("stand-in CCS: %s (state %s)"
          % (second.ccs_host, second.recovery.state.value))

    # ------------------------------------------------------------------
    print("\n=== the home machine comes back ===")
    world.host("home").reboot()
    world.run_for(60_000.0)
    mark = print_recovery_log(world, mark)
    print("CCS as seen by second:   %s" % second.ccs_host)
    print("CCS as seen by compute1: %s"
          % world.lpms[("compute1", "lfc")].ccs_host)

    # ------------------------------------------------------------------
    print("\n=== a network partition cuts off compute2 ===")
    world.network.set_partition([{"compute2"}])
    world.run_for(30_000.0)
    mark = print_recovery_log(world, mark)
    isolated = world.lpms[("compute2", "lfc")]
    print("compute2 state: %s (its processes are still alive; "
          "time-to-die is armed)" % isolated.recovery.state.value)

    print("\n=== the partition heals before time-to-die expires ===")
    world.network.heal_partition()
    world.run_for(30_000.0)
    print_recovery_log(world, mark)
    print("compute2 state: %s" % isolated.recovery.state.value)

    # The user's processes survived the whole episode.
    survivors = ppm.relogin("second").snapshot()
    print("\nsurviving computation:")
    for record in sorted(survivors.records.values(),
                         key=lambda r: r.gpid):
        print("  %s %s (%s)" % (record.gpid, record.command, record.state))


if __name__ == "__main__":
    main()
