#!/usr/bin/env python3
"""Resilient computations plus the section 7 tool suite.

Section 5 leaves resilient computations as an exercise: "control would
have to be carefully transferred to another host.  This can be achieved
with robust protocols implemented on top of our basic mechanism."  This
example runs that protocol — a supervised service whose units migrate
to fallback hosts when machines die — and inspects it with the tools
section 7 planned: open/closed files, file descriptors, and IPC
activity analysis.

Run:  python examples/resilient_service.py
"""

from repro import (
    HostClass,
    PPMClient,
    ResilientComputation,
    UnitSpec,
    World,
    file_worker_spec,
    install,
    spinner_spec,
)
from repro.core.files_tool import render_fd_table, render_open_files
from repro.tracing.ipc import render_ipc_by_kind, render_ipc_matrix


def main() -> None:
    world = World(seed=5)
    for name in ("control", "node1", "node2", "node3"):
        world.add_host(name, HostClass.VAX_780)
    world.ethernet()
    world.add_user("ops", uid=3001)
    install(world)
    world.write_recovery_file("ops", ["control", "node1"])

    client = PPMClient(world, "ops", "control").connect()

    # --- a supervised service: three units with fallback hosts -------
    service = ResilientComputation(client, [
        UnitSpec(name="frontend", command="frontend",
                 program=file_worker_spec(
                     10**9, files=["/var/log/frontend", "/etc/service.conf"]),
                 candidate_hosts=["node1", "node2", "node3"]),
        UnitSpec(name="database", command="database",
                 program=file_worker_spec(
                     10**9, files=["/var/db/main", "/var/db/journal"]),
                 candidate_hosts=["node2", "node3"]),
        UnitSpec(name="indexer", command="indexer",
                 program=spinner_spec(None),
                 candidate_hosts=["node3", "node1"]),
    ]).start()

    print("initial placement:")
    for name, info in service.status().items():
        print("  %-10s on %-8s (%s)" % (name, info["host"], info["gpid"]))

    # --- the open-files tool ------------------------------------------
    print("\n%s" % render_open_files(client.snapshot(prune=False)))

    # --- a machine dies; the supervisor transfers control ------------
    print("\nnode2 crashes (taking the database with it)...")
    world.host("node2").crash()
    service.run_supervised(30_000.0, check_interval_ms=5_000.0)
    print("placement after recovery:")
    for name, info in service.status().items():
        print("  %-10s on %-8s restarts=%d"
              % (name, info["host"], info["restarts"]))
    assert service.all_running()

    # --- the file-descriptor tool on the migrated database -----------
    forest = client.snapshot(prune=False)
    database = service.units["database"].gpid
    print("\n%s" % render_fd_table(forest, database))

    # --- IPC activity tracing and analysis ---------------------------
    print("\n%s" % render_ipc_matrix(world.recorder.events))
    print("\n%s" % render_ipc_by_kind(world.recorder.events))

    service.shutdown()
    print("\nservice shut down.")


if __name__ == "__main__":
    main()
