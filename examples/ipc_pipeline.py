#!/usr/bin/env python3
"""User-level IPC: arbitrary conversations, managed genealogies.

Section 1's setting: "In Berkeley UNIX 4.3BSD interprocess communication
can be accomplished using different addressing families ...  Two
processes wishing to communicate need not have a common ancestor nor
reside in the same host.  The UNIX paradigm of pipelined multiple-process
programs is not, however, appropriate for general distributed
computations."

This example builds exactly such a computation — talkers on three hosts
streaming to one collector, no shared ancestor — then uses the PPM to do
what a pipeline shell cannot: snapshot it, analyse its IPC, stop it, and
account for it.

Run:  python examples/ipc_pipeline.py
"""

from repro import (
    ControlAction,
    GlobalPid,
    HostClass,
    PersonalProcessManager,
    World,
    sleeper_spec,
)
from repro.tracing import render_forest, render_user_ipc, user_ipc_matrix
from repro.unixsim import EchoProgram, TalkerProgram


def main() -> None:
    world = World(seed=13)
    for name in ("hub", "sensorA", "sensorB", "sensorC"):
        world.add_host(name, HostClass.VAX_780)
    world.ethernet()
    world.add_user("lfc", uid=1001)

    ppm = PersonalProcessManager(world, "lfc", "hub",
                                 recovery_hosts=["hub"])
    ppm.start()

    # The collector is a managed PPM process; the echo image answers
    # every report it receives.
    collector_prog = EchoProgram()
    collector = ppm.create_process("collector", program=sleeper_spec(None))
    # Attach the live server behaviour to the managed process.
    proc = world.host("hub").kernel.procs.get(collector.pid)
    proc.program = collector_prog
    collector_prog.start(world.host("hub").kernel, proc)

    # Sensors on three machines stream to it — created under the PPM so
    # they are part of the managed computation, but their conversations
    # are plain 4.3BSD IPC with no shared ancestor.
    talkers = {}
    for host in ("sensorA", "sensorB", "sensorC"):
        gpid = ppm.create_process("sensor", host=host, parent=collector,
                                  program=sleeper_spec(None))
        talker = TalkerProgram(collector, interval_ms=250.0, count=8)
        sensor_proc = world.host(host).kernel.procs.get(gpid.pid)
        sensor_proc.program = talker
        talker.start(world.host(host).kernel, sensor_proc)
        talkers[host] = (gpid, talker)

    world.run_for(5_000.0)

    print("the computation (one logical ancestor, three machines):")
    print(render_forest(ppm.snapshot()))

    print("\nreports collected: %d (echoed back: %d per sensor)"
          % (collector_prog.messages_echoed,
             next(iter(talkers.values()))[1].replies_seen))

    # --- the IPC activity tracing and analysis tool -------------------
    print("\n%s" % render_user_ipc(world.recorder.events))
    matrix = user_ipc_matrix(world.recorder.events)
    busiest = max(matrix.items(), key=lambda item: item[1]["messages"])
    print("\nbusiest conversation: %s -> %s (%d messages)"
          % (busiest[0][0], busiest[0][1], busiest[1]["messages"]))

    # --- and the control a pipeline shell could never deliver ---------
    print("\nstopping the whole computation from the hub...")
    ppm.stop_computation(collector)
    stopped = [r for r in ppm.snapshot(prune=False).records.values()
               if r.state == "stopped"]
    print("%d processes stopped across %d hosts"
          % (len(stopped), len({r.gpid.host for r in stopped})))
    ppm.kill_computation(collector)


if __name__ == "__main__":
    main()
