"""Sweep: PPM operation cost versus host load and CPU class.

Section 8: "An initial assessment of the PPM overhead shows that it is
negligible for users not requiring the mechanism, and load dependent
for those using it."

The sweep measures remote-stop latency while the *remote* host's
run-queue load sits in each Table 1 band, for a VAX 11/780 and a SUN II
remote.  The claim reproduced: cost grows with load, the SUN II degrades
faster (as its Table 1 column does), and an idle user (no LPM) pays
nothing at all.
"""

import statistics

import pytest

from repro import PPMClient, install, spinner_spec
from repro.bench.tables import write_result
from repro.bench.workloads import raise_load_to_band
from repro.netsim import HostClass
from repro.unixsim import World
from repro.util import format_table

BANDS = [(0, 1), (1, 2), (2, 3), (3, 4)]


def build(remote_class):
    world = World(seed=41)
    world.add_host("origin", HostClass.VAX_780)
    world.add_host("remote", remote_class)
    world.ethernet()
    world.add_user("lfc", 1001)
    install(world)
    world.write_recovery_file("lfc", ["origin"])
    client = PPMClient(world, "lfc", "origin").connect()
    gpid = client.create_process("target", host="remote",
                                 program=spinner_spec(None))
    client.stop(gpid)  # warm everything
    client.cont(gpid)
    return world, client, gpid


def measure(remote_class, band, repeats=5):
    world, client, gpid = build(remote_class)
    raise_load_to_band(world, world.host("remote"), band)
    samples = []
    for _ in range(repeats):
        start = world.now_ms
        client.stop(gpid)
        samples.append(world.now_ms - start)
        client.cont(gpid)
    return statistics.mean(samples)


def run_sweep():
    rows = []
    for remote_class in (HostClass.VAX_780, HostClass.SUN_2):
        series = []
        for band in BANDS:
            series.append(measure(remote_class, band))
        rows.append({"remote_class": remote_class, "series": series})
    return rows


def test_sweep_load_sensitivity(benchmark, publish):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = format_table(
        ["remote host", "la (0,1]", "la (1,2]", "la (2,3]", "la (3,4]"],
        [[r["remote_class"].value]
         + ["%.0f" % value for value in r["series"]] for r in rows],
        title="Sweep: remote stop latency (ms) vs remote host load")
    write_result("sweep_load_sensitivity.txt", table)
    publish(table)

    vax, sun = rows[0]["series"], rows[1]["series"]
    # "Load dependent for those using it": monotone growth.
    assert vax == sorted(vax)
    assert sun == sorted(sun)
    # The SUN II degrades faster, as its Table 1 column does.
    assert (sun[-1] - sun[0]) > 2 * (vax[-1] - vax[0])
    # Light-load remote stop is the Table 2 value.
    assert vax[0] == pytest.approx(199.0, rel=0.1)


def test_overhead_negligible_when_unused(benchmark, publish):
    """The other half of the section 8 claim: a host with no LPM posts
    no kernel messages and spends nothing on the PPM."""
    def run():
        world = World(seed=43)
        world.add_host("solo", HostClass.VAX_780)
        world.ethernet()
        world.add_user("lfc", 1001)
        from repro.unixsim import SpinnerProgram
        host = world.host("solo")
        for index in range(20):
            host.spawn_user_process("lfc", "job%d" % index,
                                    program=SpinnerProgram(5_000.0))
        world.run_for(60_000.0)
        return host.kernel.messages_posted, host.kernel.messages_suppressed

    posted, suppressed = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("unused-PPM overhead: %d kernel messages posted, %d even "
            "reached the flag check" % (posted, suppressed))
    assert posted == 0
    assert suppressed == 0  # the comparison-to-zero fast path
