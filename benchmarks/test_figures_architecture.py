"""Figures 1-4: the paper's architecture figures, regenerated from live
system state rather than drawn by hand.

* Figure 1 — possible state of a PPM spanning three hosts (a process
  genealogy crossing host boundaries, with an exited interior node);
* Figure 2 — LPM creation steps ab initio (the four numbered steps
  through inetd and pmd);
* Figure 3 — all LPMs of a PPM maintain a secure reliable channel;
* Figure 4 — the LPM's types of communication end points.
"""

import pytest

from repro import (
    HostClass,
    PPMClient,
    PersonalProcessManager,
    World,
    fork_tree_spec,
    install,
    spinner_spec,
)
from repro.bench.scenarios import overlay_edges
from repro.bench.tables import write_result
from repro.tracing import (
    TraceEventType,
    render_creation_steps,
    render_endpoints,
    render_forest,
    render_topology,
)


def three_host_world(seed=3):
    world = World(seed=seed)
    for name in ("hostA", "hostB", "hostC"):
        world.add_host(name, HostClass.VAX_780)
    world.ethernet()
    world.add_user("lfc", 1001)
    install(world)
    world.write_recovery_file("lfc", ["hostA"])
    return world


def test_figure1_genealogy_spanning_three_hosts(benchmark, publish):
    def scenario():
        world = three_host_world()
        ppm = PersonalProcessManager(world, "lfc", "hostA").start()
        root = ppm.create_process(
            "coordinator",
            program=fork_tree_spec([("local-worker", 20.0,
                                     spinner_spec(None))],
                                   duration_ms=400.0))
        ppm.create_process("solver-b", host="hostB", parent=root,
                           program=spinner_spec(None))
        mid = ppm.create_process("relay-b", host="hostB", parent=root,
                                 program=spinner_spec(None))
        ppm.create_process("solver-c", host="hostC", parent=mid,
                           program=spinner_spec(None))
        world.run_for(2_000.0)  # coordinator exits; children live on
        forest = ppm.snapshot()
        return forest, root

    forest, root = benchmark.pedantic(scenario, rounds=1, iterations=1)
    text = render_forest(forest)
    write_result("figure1.txt", text)
    from repro.tracing import forest_to_dot
    write_result("figure1.dot", forest_to_dot(
        forest, title="Figure 1: a PPM spanning three hosts"))
    publish(text)
    # The tree spans three hosts, hangs off one logical ancestor, and
    # shows the exited coordinator because children remain alive.
    assert forest.subtree_hosts(root) == {"hostA", "hostB", "hostC"}
    assert forest.records[root].state == "exited"
    assert not forest.is_forest()


def test_figure2_lpm_creation_steps(benchmark, publish):
    def scenario():
        world = three_host_world()
        PPMClient(world, "lfc", "hostA").connect()
        return world

    world = benchmark.pedantic(scenario, rounds=1, iterations=1)
    steps = world.recorder.select(TraceEventType.CREATION_STEP,
                                  host="hostA")
    text = render_creation_steps(steps)
    write_result("figure2.txt", text)
    publish(text)
    assert [event.details["step"] for event in steps] == [1, 2, 3, 4]
    actors = [event.details["actor"] for event in steps]
    assert actors == ["inetd", "inetd", "pmd", "pmd"]
    times = [event.time_ms for event in steps]
    assert times == sorted(times)


def test_figure3_authenticated_channel_graph(benchmark, publish):
    def scenario():
        world = three_host_world()
        ppm = PersonalProcessManager(world, "lfc", "hostA").start()
        ppm.create_process("j1", host="hostB", program=spinner_spec(None))
        ppm.create_process("j2", host="hostC", program=spinner_spec(None))
        client_b = PPMClient(world, "lfc", "hostB").connect()
        client_b.create_process("j3", host="hostC",
                                program=spinner_spec(None))
        return world

    world = benchmark.pedantic(scenario, rounds=1, iterations=1)
    edges = overlay_edges(world)
    text = render_topology(
        "Figure 3: all LPMs of a PPM maintain a secure reliable "
        "communication channel", ["hostA", "hostB", "hostC"], edges)
    write_result("figure3.txt", text)
    from repro.tracing import topology_to_dot
    write_result("figure3.dot", topology_to_dot(
        ["hostA", "hostB", "hostC"], edges,
        title="Figure 3: the authenticated channel mesh",
        ccs_host="hostA"))
    publish(text)
    assert set(edges) == {("hostA", "hostB"), ("hostA", "hostC"),
                          ("hostB", "hostC")}
    # Every channel is authenticated on both sides.
    for (host, _user), lpm in world.lpms.items():
        for link in lpm.siblings.values():
            assert link.authenticated


def test_figure4_lpm_endpoint_types(benchmark, publish):
    def scenario():
        world = three_host_world()
        ppm = PersonalProcessManager(world, "lfc", "hostA").start()
        ppm.create_process("j1", host="hostB", program=spinner_spec(None))
        return world

    world = benchmark.pedantic(scenario, rounds=1, iterations=1)
    lpm = world.lpms[("hostA", "lfc")]
    description = lpm.describe_endpoints()
    text = render_endpoints(description)
    write_result("figure4.txt", text)
    publish(text)
    # The three endpoint groups of Figure 4.
    assert "kernel" in description["kernel_socket"]
    assert description["accept_socket"].startswith("lpm:lfc:")
    assert description["sibling_sockets"] == ["hostB"]
    assert len(description["tool_sockets"]) == 1
    # The kernel socket really is registered with the kernel.
    assert world.host("hostA").kernel.has_lpm(1001)
