"""Open-loop multi-tenant workload generator: M users x N hosts.

ROADMAP item 3 ("millions of users" means thousands of per-user PPMs
multiplexed over one host fleet): this module drives M concurrent user
sessions over an N-host world through the paper's tool vocabulary —
login -> create (fan-out) -> locate -> tool_call -> gather -> logout —
with **heavy-tailed (lognormal) open-loop arrivals**: sessions start on
a schedule drawn once from a seeded RNG, never waiting for earlier
sessions, exactly how real login waves hit a fleet.

Each operation after login opens its *own* tool stream, the way the
paper's tools really work ("its services must be obtained by one of a
series of tools", section 4) — so every op re-runs the Figure-2
bootstrap and a login wave hammers the pmd authentication path the
incarnation-keyed auth cache exists for.

Per-operation latencies land in :class:`repro.perf.histogram.
LatencyHistogram` ladders kept **per home host**, so the same code runs
under the lockstep shard harness: every session executes entirely as
events owned by its home host, and the per-host ladders are merged
through a coordinated ``gather_hosts`` read at the end.  SLOs
(p50/p95/p99 per op) come from the merged ladders.

Run standalone (single-threaded harness, prints the SLO table)::

    PYTHONPATH=src python -m benchmarks.workloads [--smoke]
        [--users M] [--hosts N] [--budget-s S]

or as the ``multitenant_50x24`` scenario of ``benchmarks.perf.runner``
(recorded in BENCH_core.json, honours ``--shards K --check-identity``),
which runs it twice — shared circuits vs private — and records the
steady-state link counts of both.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List

from repro import HostClass, PPMConfig, World, install, spinner_spec
from repro.core.messages import Message, MsgKind
from repro.core.wire import message_size_bytes
from repro.perf.histogram import LatencyHistogram
from repro.unixsim.inetd import INETD_SERVICE, PPM_SERVICE

#: The per-operation histogram ladders every run reports.
OPS = ("login", "create", "locate", "tool_call", "gather", "session")


# ----------------------------------------------------------------------
# One user session (fully event-driven: shard-harness safe)
# ----------------------------------------------------------------------

class Session:
    """One user's session as a callback state machine.

    Never drives the simulation (no ``run_until_true``): every step is
    a fabric callback, so hundreds of sessions interleave open-loop and
    the whole thing executes as events owned by the session's home
    host — the property the lockstep shard harness needs.
    """

    def __init__(self, world, user: str, home: str,
                 create_targets: List[str], locate_index: int,
                 record: Callable[[str, float], None],
                 on_done: Callable[["Session"], None]) -> None:
        self.world = world
        self.fabric = world.fabric
        self.user = user
        self.home = home
        self.create_targets = create_targets
        self.locate_index = locate_index
        self.record = record
        self.on_done = on_done
        self.created: List[tuple] = []
        self.failed = False
        self.finished = False
        self._t0 = 0.0
        self._req = 0
        self._pending: Dict[int, Callable] = {}
        self._endpoint = None

    # -- plumbing ------------------------------------------------------

    def _fail(self, _reason=None) -> None:
        if self.finished:
            return
        self.failed = True
        self._finish()

    def _finish(self) -> None:
        if self.finished:
            return
        self.finished = True
        if self._endpoint is not None and self._endpoint.open:
            self._endpoint.close()
        self._endpoint = None
        self.record("session", self.fabric.now_ms - self._t0)
        self.on_done(self)

    def _connect_tool(self, ready: Callable) -> None:
        """Figure-2 bootstrap plus the tool stream; ``ready(endpoint)``
        when the stream is up (every op dials its own tool)."""
        def bootstrap_replied(payload, bootstrap_endpoint) -> None:
            bootstrap_endpoint.close()
            if not isinstance(payload, dict) or not payload.get("ok"):
                self._fail()
                return

            def established(endpoint) -> None:
                self._endpoint = endpoint
                endpoint.on_message = self._on_message
                endpoint.on_close = self._on_close
                ready(endpoint)

            self.fabric.connect(
                self.home, self.home, payload["accept_service"],
                payload={"role": "tool", "user": self.user,
                         "host": self.home},
                on_established=established,
                on_failed=self._fail)

        def bootstrap_established(endpoint) -> None:
            endpoint.on_message = bootstrap_replied

        self.fabric.connect(
            self.home, self.home, INETD_SERVICE,
            payload={"service": PPM_SERVICE, "user": self.user,
                     "origin_host": self.home, "origin_user": self.user},
            on_established=bootstrap_established,
            on_failed=self._fail)

    def _on_message(self, message, _endpoint) -> None:
        if not isinstance(message, Message) or message.reply_to is None:
            return
        callback = self._pending.pop(message.reply_to, None)
        if callback is not None:
            callback(message.payload)

    def _on_close(self, _reason, endpoint) -> None:
        if endpoint is not self._endpoint:
            return
        self._endpoint = None
        if self._pending:  # the LPM died mid-conversation
            self._pending.clear()
            self._fail()

    def _call(self, kind: MsgKind, payload: dict,
              on_reply: Callable[[dict], None]) -> None:
        self._req += 1
        request = Message(kind=kind, req_id=self._req, origin=self.home,
                          user=self.user, payload=payload)
        self._pending[request.req_id] = on_reply
        self._endpoint.send(
            request, nbytes=message_size_bytes(request),
            extra_delay_ms=self.fabric.tool_send_delay_ms(self.home))

    def _timed(self, op: str, kind: MsgKind, payload: dict,
               then: Callable[[dict], None]) -> None:
        start = self.fabric.now_ms

        def replied(reply: dict) -> None:
            self.record(op, self.fabric.now_ms - start)
            if not reply.get("ok"):
                self._fail()
                return
            then(reply)

        self._call(kind, payload, replied)

    def _fresh_tool_op(self, op: str, kind: MsgKind, payload: dict,
                       then: Callable[[dict], None]) -> None:
        """Open a new tool stream (a separate tool process in the
        paper), issue one request, close the stream, continue."""
        def ready(endpoint) -> None:
            def done(reply: dict) -> None:
                endpoint.close()
                self._endpoint = None
                then(reply)

            self._timed(op, kind, payload, done)

        self._connect_tool(ready)

    # -- the session script -------------------------------------------

    def start(self) -> None:
        """login -> create* -> locate -> tool_call -> gather -> logout."""
        self._t0 = self.fabric.now_ms
        self._connect_tool(self._logged_in)

    def _logged_in(self, _endpoint) -> None:
        self.record("login", self.fabric.now_ms - self._t0)
        self._create_next(0)

    def _create_next(self, index: int) -> None:
        if index >= len(self.create_targets):
            self._endpoint.close()
            self._endpoint = None
            self._locate()
            return
        target = self.create_targets[index]

        def created(reply: dict) -> None:
            self.created.append((reply["host"], reply["pid"]))
            self._create_next(index + 1)

        self._timed("create", MsgKind.TOOL_CREATE,
                    {"command": "job-%s-%s" % (self.user, target),
                     "args": [], "program": spinner_spec(None),
                     "host": target, "foreground": False}, created)

    def _locate(self) -> None:
        host, pid = self.created[self.locate_index % len(self.created)]
        self._fresh_tool_op("locate", MsgKind.TOOL_LOCATE,
                            {"host": host, "pid": pid},
                            lambda _reply: self._ping())

    def _ping(self) -> None:
        self._fresh_tool_op("tool_call", MsgKind.TOOL_PING, {},
                            lambda _reply: self._gather())

    def _gather(self) -> None:
        self._fresh_tool_op("gather", MsgKind.TOOL_SNAPSHOT, {},
                            lambda _reply: self._finish())


# ----------------------------------------------------------------------
# World + schedule construction (replicated, shard-deterministic)
# ----------------------------------------------------------------------

def build_multitenant_world(n_users: int, n_hosts: int, gateways: int,
                            seed: int, sharing: bool):
    """An N-host fleet (``gateways`` fully meshed, the rest hanging off
    them round-robin) with M user accounts, ready for sessions.

    Returns ``(world, names, users, homes)`` where ``homes[user]`` is
    the user's (gateway) home host.
    """
    config = PPMConfig(circuit_sharing=sharing)
    world = World(seed=seed, config=config)
    names = ["h%03d" % i for i in range(n_hosts)]
    for name in names:
        world.add_host(name, HostClass.VAX_780)
    gateway_names = names[:gateways]
    world.ethernet(gateway_names)
    wire = world.cost_model.wire_ms
    for index, leaf in enumerate(names[gateways:]):
        world.network.add_link(leaf, gateway_names[index % gateways],
                               latency_ms=wire)
    users = ["u%03d" % i for i in range(n_users)]
    homes = {}
    for index, user in enumerate(users):
        world.add_user(user, 2000 + index)
        homes[user] = gateway_names[index % gateways]
    install(world)
    for user in users:
        world.write_recovery_file(user, [homes[user]])
    return world, names, users, homes


class WorkloadState:
    """Per-world run state: schedules, per-host ladders, completion."""

    def __init__(self) -> None:
        #: home host -> {op: LatencyHistogram} (written only by events
        #: owned by that host — shard-safe).
        self.hists: Dict[str, Dict[str, LatencyHistogram]] = {}
        #: home host -> sessions finished there (integer, sum-able).
        self.done: Dict[str, int] = {}
        #: home host -> sessions that aborted there.
        self.failures: Dict[str, int] = {}
        self.sessions: List[Session] = []

    def hist_state(self, host: str) -> dict:
        """Picklable per-host ladder snapshot for ``gather_hosts``."""
        ladders = self.hists.get(host, {})
        return {op: (hist.counts, hist.count, hist.sum_ms,
                     hist.min_ms, hist.max_ms)
                for op, hist in ladders.items() if hist.count}


def schedule_sessions(world, users: List[str], homes: Dict[str, str],
                      leaf_names: List[str], fanout: int,
                      horizon_ms: float, seed: int) -> WorkloadState:
    """Draw the open-loop arrival schedule and pre-register every
    session as a future event owned by its home host.

    All randomness (arrival times, fan-out target sets, locate picks)
    is drawn *here*, from one seeded RNG, during replicated
    construction — session execution itself draws nothing, so a
    sharded run replays the identical workload.
    """
    rng = random.Random(seed)
    state = WorkloadState()
    # Lognormal inter-arrivals with the requested mean: heavy-tailed,
    # so arrivals clump into waves with long gaps between them.
    mean_gap_ms = horizon_ms / max(1, len(users))
    sigma = 1.0
    mu = math.log(mean_gap_ms) - sigma * sigma / 2.0
    arrival_ms = 0.0
    for user in users:
        arrival_ms += rng.lognormvariate(mu, sigma)
        home = homes[user]
        fan = min(fanout, len(leaf_names))
        targets = rng.sample(leaf_names, fan)
        locate_index = rng.randrange(fan)
        ladders = state.hists.setdefault(
            home, {op: LatencyHistogram() for op in OPS})

        def record(op: str, value_ms: float, ladders=ladders) -> None:
            ladders[op].record(value_ms)

        def on_done(session: Session, home=home) -> None:
            state.done[home] = state.done.get(home, 0) + 1
            if session.failed:
                state.failures[home] = state.failures.get(home, 0) + 1

        session = Session(world, user, home, targets, locate_index,
                          record, on_done)
        state.sessions.append(session)
        world.fabric.schedule(arrival_ms, session.start,
                              label="session %s" % (user,), owner=home)
    return state


# ----------------------------------------------------------------------
# Merging per-host ladders and reporting SLOs
# ----------------------------------------------------------------------

def merge_gathered(gathered: Dict[str, dict]) -> Dict[str, LatencyHistogram]:
    """Merge ``gather_hosts`` ladder snapshots into one ladder per op."""
    merged: Dict[str, LatencyHistogram] = {op: LatencyHistogram()
                                           for op in OPS}
    for _host, ladders in sorted(gathered.items()):
        for op, (counts, count, sum_ms, min_ms, max_ms) in ladders.items():
            target = merged[op]
            for index, bucket in enumerate(counts):
                target.counts[index] += bucket
            target.count += count
            target.sum_ms += sum_ms
            if min_ms is not None and (target.min_ms is None
                                       or min_ms < target.min_ms):
                target.min_ms = min_ms
            if max_ms is not None and (target.max_ms is None
                                       or max_ms > target.max_ms):
                target.max_ms = max_ms
    return merged


def slo_block(merged: Dict[str, LatencyHistogram]) -> dict:
    """The per-op p50/p95/p99 block recorded in BENCH_core.json."""
    block = {}
    for op in OPS:
        summary = merged[op].summary()
        block[op] = {"count": summary["count"],
                     "p50_ms": summary["p50_ms"],
                     "p95_ms": summary["p95_ms"],
                     "p99_ms": summary["p99_ms"]}
    return block


def print_slo_table(block: dict) -> None:
    print("%-10s %8s %12s %12s %12s" % ("op", "count", "p50_ms",
                                        "p95_ms", "p99_ms"))
    for op in OPS:
        row = block[op]
        print("%-10s %8d %12s %12s %12s"
              % (op, row["count"], row["p50_ms"], row["p95_ms"],
                 row["p99_ms"]))


# ----------------------------------------------------------------------
# Standalone CLI (the CI smoke entry point)
# ----------------------------------------------------------------------

def main(argv=None) -> int:
    import argparse
    import time

    parser = argparse.ArgumentParser(
        prog="benchmarks.workloads",
        description="Open-loop multi-tenant workload: M users x N hosts.")
    parser.add_argument("--smoke", action="store_true",
                        help="small M x N for CI (8 users x 6 hosts)")
    parser.add_argument("--users", type=int, default=None)
    parser.add_argument("--hosts", type=int, default=None)
    parser.add_argument("--fanout", type=int, default=None)
    parser.add_argument("--horizon-s", type=float, default=None,
                        help="simulated arrival horizon in seconds")
    parser.add_argument("--budget-s", type=float, default=None,
                        help="fail (exit 2) past this wall-clock budget")
    parser.add_argument("--seed", type=int, default=47)
    args = parser.parse_args(argv)

    if args.smoke:
        defaults = dict(n_users=8, n_hosts=6, gateways=2, fanout=3,
                        horizon_ms=20_000.0)
    else:
        defaults = dict(n_users=50, n_hosts=24, gateways=4, fanout=10,
                        horizon_ms=120_000.0)
    if args.users is not None:
        defaults["n_users"] = args.users
    if args.hosts is not None:
        defaults["n_hosts"] = args.hosts
    if args.fanout is not None:
        defaults["fanout"] = args.fanout
    if args.horizon_s is not None:
        defaults["horizon_ms"] = args.horizon_s * 1000.0
    defaults["seed"] = args.seed

    from benchmarks.perf.scenarios import multitenant_scenario
    from repro.netsim.parallel import run_scenario

    start = time.perf_counter()
    outcome = run_scenario(multitenant_scenario, kwargs=defaults, shards=1)
    wall_s = time.perf_counter() - start
    result = outcome.result
    for mode in ("shared", "private"):
        print("\n--- %s circuits: %d steady-state inter-host links ---"
              % (mode, result["links_%s" % mode]))
        print_slo_table(result["slo_%s" % mode])
    print("\nlink reduction (shared vs private): %.1fx"
          % (result["link_reduction_x"],))
    print("lanes on shared circuits: %d" % (result["lanes_shared"],))
    print("sessions: %d per mode, %d failed"
          % (result["n_users"], result["failed_sessions"]))
    print("wall: %.2fs" % (wall_s,))
    if result["failed_sessions"]:
        print("FAILED SESSIONS — workload did not complete cleanly")
        return 1
    if args.budget_s is not None and wall_s > args.budget_s:
        print("WALL BUDGET EXCEEDED: %.2fs > %.2fs"
              % (wall_s, args.budget_s))
        return 2
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
