"""Table 3: elapsed time to gather snapshot information in the four
Figure-5 PPM topologies.

Paper values: 205 / 225 / 461 / 507 ms, measured with "six user
processes in each of the remote machines".

The original figure is not legible in the surviving copy, so the four
configurations are reconstructed from the reported times (see
EXPERIMENTS.md): one direct remote; two direct remotes; a two-deep
chain; and a direct remote plus a two-deep chain.  The *shape* —
adding a star branch is nearly free, adding overlay depth roughly
doubles the elapsed time — is the reproduced claim.
"""

import statistics

import pytest

from repro.bench.scenarios import FIGURE5_TOPOLOGIES, build_figure5_topology
from repro.bench.tables import comparison_table, write_result

from .conftest import assert_close_to_paper

REPEATS = 5


def measure_topology(topology):
    world, origin = build_figure5_topology(topology)
    times = []
    for _ in range(REPEATS):
        start = world.sim.now_ms
        forest = origin.snapshot(prune=False)
        times.append(world.sim.now_ms - start)
        expected = 6 * len(topology.remote_hosts)
        assert len(forest) == expected, \
            "%s: %d records, expected %d" % (topology.name, len(forest),
                                             expected)
        assert not forest.missing_hosts
    return statistics.mean(times)


def run_table3():
    rows = []
    for topology in FIGURE5_TOPOLOGIES:
        measured = measure_topology(topology)
        rows.append({"case": "%s (%s)" % (topology.name,
                                          topology.description),
                     "paper_ms": topology.paper_ms,
                     "measured_ms": measured})
    return rows


def test_table3_snapshot_times(benchmark, publish):
    rows = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    table = comparison_table(
        "Table 3: elapsed time to transmit snapshot information (ms)",
        rows)
    write_result("table3.txt", table)
    publish(table)

    t1, t2, t3, t4 = [row["measured_ms"] for row in rows]
    # Shape: strictly increasing across the four topologies, as in the
    # paper; a second star branch is cheap, overlay depth is expensive.
    assert t1 < t2 < t3 < t4
    assert (t2 - t1) < 0.5 * (t3 - t1)
    assert t3 > 1.8 * t1

    for row in rows:
        assert_close_to_paper(row["measured_ms"], row["paper_ms"],
                              rel_tol=0.20, what=row["case"])
