"""Ablation A5: pmd stable storage.

Section 5 proposes (but the authors did not implement) persisting the
pmd's registry: "The state information kept by the process manager
daemon could be stored in secondary (even stable) storage ... This
would allow recovery from crashes suffered only by the daemon but not
by any LPM.  This feature ... would certainly add to the overhead of
creating LPMs."

Both modes exist in this reproduction, so the ablation measures the
trade exactly as stated: creation overhead versus correctness after a
pmd-only crash.
"""

import pytest

from repro import PPMClient, PPMConfig, install
from repro.bench.tables import write_result
from repro.netsim import HostClass
from repro.unixsim import World
from repro.util import format_table


def run_case(stable_storage):
    config = PPMConfig(pmd_stable_storage=stable_storage)
    world = World(seed=21, config=config)
    world.add_host("solo", HostClass.VAX_780)
    world.ethernet()
    world.add_user("lfc", 1001)
    install(world)
    world.write_recovery_file("lfc", ["solo"])

    start = world.sim.now_ms
    PPMClient(world, "lfc", "solo").connect()
    creation_ms = world.sim.now_ms - start
    first_lpm = world.lpms[("solo", "lfc")]

    # The daemon crashes; no LPM is harmed.
    world.host("solo").pmd_daemon.crash()
    PPMClient(world, "lfc", "solo").connect()
    second_lpm = world.lpms[("solo", "lfc")]
    duplicated = second_lpm is not first_lpm
    return creation_ms, duplicated


def run_ablation():
    rows = []
    for stable in (False, True):
        creation_ms, duplicated = run_case(stable)
        rows.append({"mode": "stable storage" if stable else "in memory",
                     "creation_ms": creation_ms,
                     "duplicated": duplicated})
    return rows


def test_ablation_pmd_stable_storage(benchmark, publish):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = format_table(
        ["pmd registry", "LPM bootstrap (ms)",
         "duplicate LPM after pmd crash"],
        [[r["mode"], "%.1f" % r["creation_ms"],
          "yes (incorrect)" if r["duplicated"] else "no (recovered)"]
         for r in rows],
        title="A5: pmd registry persistence (section 5's proposal)")
    write_result("ablation_pmd_storage.txt", table)
    publish(table)

    in_memory, stable = rows
    # The failure the paper describes, and the fix it proposes.
    assert in_memory["duplicated"]
    assert not stable["duplicated"]
    # The fix "adds to the overhead of creating LPMs".
    assert stable["creation_ms"] > in_memory["creation_ms"]
