"""Ablation A7: .recovery files versus a CCS name server.

Section 5 closes with the alternative: "The existence of name servers
in the network could be used to aid in crash recovery. ... In this
approach the assignment of the CCS could be better coordinated by
network administrators to avoid possible bottlenecks."

Both mechanisms are implemented; this ablation crashes the coordinator
under each and measures (a) time until every surviving LPM agrees on
the new coordinator, and (b) what happens when the coordination
infrastructure itself is lost — the name server is a single point of
failure that ``.recovery`` files (replicated on every host) do not
have.
"""

import pytest

from repro import PPMClient, PPMConfig, install, spinner_spec
from repro.bench.tables import write_result
from repro.core.recovery import RecoveryState
from repro.netsim import HostClass
from repro.tracing import TraceEventType
from repro.unixsim import World
from repro.util import format_table

HOSTS = ["alpha", "beta", "gamma", "nshost"]
TUNING = dict(ccs_probe_interval_ms=5_000.0,
              recovery_retry_interval_ms=5_000.0,
              time_to_die_ms=600_000.0,
              request_timeout_ms=8_000.0)


def build(ccs_source):
    if ccs_source == "name_server":
        config = PPMConfig(ccs_source="name_server",
                           name_server_host="nshost", **TUNING)
    else:
        config = PPMConfig(**TUNING)
    world = World(seed=37, config=config)
    for name in HOSTS:
        world.add_host(name, HostClass.VAX_780)
    world.ethernet()
    world.add_user("lfc", 1001)
    install(world)
    if ccs_source == "name_server":
        server = world.install_name_server("nshost")
        server.administer("lfc", ["alpha", "beta", "gamma"])
    else:
        world.write_recovery_file("lfc", ["alpha", "beta", "gamma"])
    client = PPMClient(world, "lfc", "alpha").connect()
    for host in ("beta", "gamma"):
        client.create_process("job-%s" % host, host=host,
                              program=spinner_spec(None))
    world.run_for(2_000.0)
    return world


def survivors_converged(world):
    beta = world.lpms[("beta", "lfc")]
    gamma = world.lpms[("gamma", "lfc")]
    return (beta.ccs_host == "beta" and gamma.ccs_host == "beta"
            and beta.recovery.state in (RecoveryState.ACTING_CCS,
                                        RecoveryState.NORMAL)
            and gamma.recovery.state is RecoveryState.NORMAL)


def run_case(ccs_source):
    world = build(ccs_source)
    crash_at = world.now_ms
    world.host("alpha").crash()
    converged = world.run_until_true(lambda: survivors_converged(world),
                                     timeout_ms=300_000.0)
    convergence_ms = world.now_ms - crash_at if converged else None

    # Second scenario: the coordination infrastructure dies too.
    world2 = build(ccs_source)
    world2.host("alpha").crash()
    if ccs_source == "name_server":
        world2.host("nshost").crash()
    else:
        # .recovery files are replicated on every host: losing one more
        # ordinary machine changes nothing.
        world2.host("nshost").crash()
    world2.run_for(120_000.0)
    infra_loss_recovered = survivors_converged(world2)
    return {"mechanism": ccs_source,
            "convergence_ms": convergence_ms,
            "infra_loss_recovered": infra_loss_recovered}


def run_ablation():
    return [run_case("recovery_file"), run_case("name_server")]


def test_ablation_ccs_source(benchmark, publish):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = format_table(
        ["CCS mechanism", "reconvergence after CCS crash (ms)",
         "survives losing coordination host"],
        [[r["mechanism"],
          "%.0f" % r["convergence_ms"] if r["convergence_ms"] else "never",
          "yes" if r["infra_loss_recovered"] else "NO"] for r in rows],
        title="A7: .recovery files vs a CCS name server")
    write_result("ablation_ccs_source.txt", table)
    publish(table)

    recovery_file, name_server = rows
    # Both converge after a plain CCS crash.
    assert recovery_file["convergence_ms"] is not None
    assert name_server["convergence_ms"] is not None
    # The replicated .recovery files shrug off an extra host loss; the
    # name server is a single point of failure.
    assert recovery_file["infra_loss_recovered"]
    assert not name_server["infra_loss_recovered"]
