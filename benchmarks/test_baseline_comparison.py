"""Baseline comparison: the PPM versus what existed before it.

The paper's motivation in numbers.  Section 1: the C-shell "requires
only the ability to control the shell's direct children"; section 6:
with rexec, "remote processes must be explicitly hunted for and
signalled" and children of remote processes cannot be signalled
separately.

One distributed computation (a root on the origin and a remote worker
per other host, each forking a grandchild) is stopped by each of the
three mechanisms; we measure *control coverage* (fraction of the
computation's live processes actually reached) and the per-operation
latency each mechanism pays.
"""

import pytest

from repro import ControlAction, PPMClient, fork_tree_spec, spinner_spec
from repro.baselines import CshJobControl, RexecClient, install_rexecd
from repro.bench.tables import write_result
from repro.netsim import HostClass
from repro.unixsim import ProcState, World
from repro.unixsim.signals import Signal
from repro.core.lpm import install
from repro.util import format_table

HOSTS = ["origin", "far1", "far2"]


def fresh_world(seed=31):
    world = World(seed=seed)
    for name in HOSTS:
        world.add_host(name, HostClass.VAX_780)
    world.ethernet()
    world.add_user("lfc", 1001)
    install(world)
    install_rexecd(world)
    world.write_recovery_file("lfc", ["origin"])
    return world


def computation_pids(world):
    """All live user computation processes as (host, pid) pairs."""
    pids = []
    for name in HOSTS:
        for proc in world.host(name).kernel.procs.by_uid(1001):
            if proc.alive and proc.command not in ("lpm", "lpm-handler",
                                                   "csh"):
                pids.append((name, proc.pid))
    return pids


def run_ppm(world):
    client = PPMClient(world, "lfc", "origin").connect()
    spec = fork_tree_spec([("grandchild", 50.0, spinner_spec(None))])
    root = client.create_process("root", program=spec)
    for host in HOSTS[1:]:
        client.create_process("worker-%s" % host, host=host, parent=root,
                              program=spec)
    world.run_for(2_000.0)
    before = computation_pids(world)
    # The snapshot is the PPM's locate phase — one gather identifies
    # every member; only the per-signal cost is compared below.
    forest = client.snapshot(prune=False)
    targets = [g for g in forest.descendants(root)] + [root]
    start = world.now_ms
    for gpid in targets:
        client.control(gpid, ControlAction.STOP)
    elapsed = world.now_ms - start
    stopped = [(host, pid) for host, pid in before
               if world.host(host).kernel.procs.get(pid).state
               is ProcState.STOPPED]
    return len(stopped) / len(before), elapsed / max(len(targets), 1)


def run_csh(world):
    shell = CshJobControl(world.host("origin"), "lfc")
    from repro.unixsim.programs import ForkTreeProgram, SpinnerProgram
    job = shell.run_pipeline([("root", ForkTreeProgram(
        [("grandchild", 50.0, SpinnerProgram(None))]))])
    # The remote parts cannot even be created through csh; spawn them
    # directly to make the computations comparable.
    for host in HOSTS[1:]:
        world.host(host).kernel.spawn(
            1001, "worker-%s" % host,
            program=ForkTreeProgram([("grandchild", 50.0,
                                      SpinnerProgram(None))]))
    world.run_for(2_000.0)
    before = computation_pids(world)
    start = world.now_ms
    signalled = shell.stop(job)
    elapsed = world.now_ms - start
    stopped = [(host, pid) for host, pid in before
               if world.host(host).kernel.procs.get(pid).state
               is ProcState.STOPPED]
    return len(stopped) / len(before), elapsed / max(len(signalled), 1)


def run_rexec(world):
    client = RexecClient(world, "lfc", "secret", "origin")
    spec = fork_tree_spec([("grandchild", 50.0, spinner_spec(None))])
    # rexec has no local management; the root runs unmanaged locally.
    world.host("origin").kernel.spawn(
        1001, "root", program=__import__(
            "repro.core.progspec", fromlist=["build_program"]
        ).build_program(spec))
    roots = [client.rexec(host, "worker-%s" % host, spec)
             for host in HOSTS[1:]]
    world.run_for(2_000.0)
    before = computation_pids(world)
    start = world.now_ms
    for gpid in roots:  # the hunt: only the pids it created
        client.signal(gpid, Signal.SIGSTOP)
    elapsed = world.now_ms - start
    stopped = [(host, pid) for host, pid in before
               if world.host(host).kernel.procs.get(pid).state
               is ProcState.STOPPED]
    return len(stopped) / len(before), elapsed / max(len(roots), 1)


def run_comparison():
    rows = []
    for name, runner in (("PPM", run_ppm), ("csh job control", run_csh),
                         ("rexec", run_rexec)):
        world = fresh_world()
        coverage, per_op = runner(world)
        rows.append({"mechanism": name, "coverage": coverage,
                     "per_op_ms": per_op})
    return rows


def test_baseline_comparison(benchmark, publish):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    table = format_table(
        ["mechanism", "control coverage", "per-signal cost (ms)"],
        [[r["mechanism"], "%.0f%%" % (100 * r["coverage"]),
          "%.0f" % r["per_op_ms"]] for r in rows],
        title="Baseline comparison: stopping one distributed computation "
              "(root + 2 remote workers + 3 grandchildren)")
    write_result("baseline_comparison.txt", table)
    publish(table)

    by_name = {r["mechanism"]: r for r in rows}
    # The PPM reaches everything; the baselines reach fractions.
    assert by_name["PPM"]["coverage"] == 1.0
    assert by_name["csh job control"]["coverage"] <= 0.35
    assert by_name["rexec"]["coverage"] <= 0.5
    # rexec pays a fresh connection + password check per signal; the
    # PPM's maintained channels are much cheaper per operation.
    assert by_name["rexec"]["per_op_ms"] > \
        1.5 * by_name["PPM"]["per_op_ms"]
