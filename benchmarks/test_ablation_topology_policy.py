"""Ablation A3: on-demand versus full-mesh sibling graphs.

Section 4: "The decision whether or not to propagate connection
information between sibling LPMs in order to increase the connectivity
of the communication graph is a function of the cost of maintaining
connections and of the additional benefit of the connections."

This ablation measures both sides on a chain-of-remotes workload: the
full-mesh policy pays O(N^2) authenticated channels to buy flat
snapshot latency; the paper's on-demand policy keeps O(N) channels and
pays overlay depth at snapshot time.
"""

import pytest

from repro import PPMClient, PPMConfig, spinner_spec, install
from repro.bench.tables import write_result
from repro.netsim import HostClass
from repro.unixsim import World
from repro.util import format_table

N_HOSTS = 6


def build_chain_session(policy):
    config = PPMConfig(topology_policy=policy)
    world = World(seed=13, config=config)
    names = ["h%d" % i for i in range(N_HOSTS)]
    for name in names:
        world.add_host(name, HostClass.VAX_780)
    world.ethernet()
    world.add_user("lfc", 1001)
    install(world)
    world.write_recovery_file("lfc", [names[0]])
    # The computation spreads down a chain: each host's tool starts the
    # next host's processes, so on-demand connectivity forms a path.
    clients = {names[0]: PPMClient(world, "lfc", names[0]).connect()}
    for src, dst in zip(names, names[1:]):
        clients[src].create_process("edge-%s" % dst, host=dst,
                                    program=spinner_spec(None))
        clients[dst] = PPMClient(world, "lfc", dst).connect()
    world.run_for(30_000.0)  # let the full-mesh policy finish closing
    origin = clients[names[0]]
    origin.snapshot()  # warm handlers
    return world, origin, names


def run_case(policy):
    world, origin, names = build_chain_session(policy)
    channels = sum(
        len(world.lpms[(name, "lfc")].authenticated_siblings())
        for name in names) // 2
    start = world.sim.now_ms
    forest = origin.snapshot(prune=False)
    elapsed = world.sim.now_ms - start
    assert len(forest) == N_HOSTS - 1
    return channels, elapsed


def run_ablation():
    rows = []
    for policy in ("on_demand", "full_mesh"):
        channels, elapsed = run_case(policy)
        rows.append({"policy": policy, "channels": channels,
                     "snapshot_ms": elapsed})
    return rows


def test_ablation_topology_policy(benchmark, publish):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = format_table(
        ["policy", "authenticated channels", "snapshot (ms)"],
        [[r["policy"], r["channels"], "%.1f" % r["snapshot_ms"]]
         for r in rows],
        title="A3: sibling-graph policy on a %d-host chain workload"
              % N_HOSTS)
    write_result("ablation_topology_policy.txt", table)
    publish(table)

    on_demand, full_mesh = rows
    # On demand: a path (N-1 channels).  Full mesh: N(N-1)/2.
    assert on_demand["channels"] == N_HOSTS - 1
    assert full_mesh["channels"] == N_HOSTS * (N_HOSTS - 1) // 2
    # The mesh buys snapshot latency: every LPM is one hop away.
    assert full_mesh["snapshot_ms"] < 0.6 * on_demand["snapshot_ms"]
