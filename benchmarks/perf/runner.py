"""Hot-path microbenchmarks, writing the repo's perf trajectory.

The scenarios cover the paths every experiment in the reproduction
runs through:

``encode_throughput``
    Message serialisation and size accounting, including hop-by-hop
    route growth (the broadcast-forwarding pattern that re-sizes the
    same message at every hop).

``broadcast_flood``
    One LOCATE broadcast over a full-mesh sibling graph — the
    duplicate-suppression worst case: every LPM floods every sibling,
    and the dedup seen-set absorbs the quadratic duplicate storm.

``snapshot_40_hosts``
    The A4 stress setup (section 8 "into the tens of nodes"): a
    40-host star session, three snapshot gathers.

``gather_merge_40``
    The gather layer's record merge in isolation at the 40-host scale:
    the old shape (every child merge re-walks the accumulated record
    list, then one global sort reaches gpid order) against the single
    k-way ``heapq.merge`` pass over already-sorted runs, with
    deterministic record-touch counts for both.

``stream_flood``
    The stream-transport worst case: N back-to-back sends per circuit
    across M circuits.  The old shape (one simulator event per
    in-flight segment, reproduced inline with the exact arrival-time
    arithmetic) against the batched per-circuit-direction delivery
    timer, asserting the arrival times are byte-identical and
    recording the event-queue push counts for both.

``span_overhead``
    The span-tracing layer's cost: the same multi-host snapshot
    session run untraced and traced (``repro.perf.spans``), recording
    both simulated times (they legitimately differ — the span context
    rides the wire and is charged bytes), the wall-clock overhead
    ratio, and the span volume.  ``--trace-out`` additionally exports
    the traced run as Chrome trace-event JSON.

``doctor_sweep``
    The operational surface's read-only contract: repeated
    ``probe_world`` + ``run_doctor`` sweeps over a live multi-host
    session, asserting the simulated clock and the event-schedule
    count are untouched afterwards — the doctor in the loop cannot
    move a single ``sim_ms`` (see ``docs/OPERATIONS.md``).

``watch_steady``
    The continuous watch loop's sampling overhead: repeated
    ``probe_world`` + ``run_doctor`` + ``Watcher.feed`` sweeps with a
    full :class:`~repro.perf.timeseries.MetricsSampler` attached over
    a healthy multi-host session.  Asserts the frozen-clock /
    zero-events contract still holds with the watch layer on top,
    that ``watch_sweeps``/``watch_samples`` count one per sweep with
    zero ``watch_edges``, and that every ring series respects its
    capacity bound (the loop's memory does not grow with uptime).

``locate_200_hosts``
    The steady-state LOCATE cost at scale (24 hosts under --smoke):
    the full-mesh overlay, where every lookup floods all O(n²) edges,
    against the ``sparse`` bounded-degree overlay, where the first
    lookup floods O(n·k) edges and repeats ride the route cache (a
    two-message unicast probe), repeat *broadcasts* ride the pruned
    per-source tree (~n−1 forwards), and repeated failed lookups are
    refused from the negative cache without any traffic.  Records
    open-link counts and per-locate flood forwards for both shapes.
    Harness-based (``benchmarks.perf.scenarios``): honours ``--shards``.

``locate_500_hosts``
    The sparse overlay alone at 500 hosts (48 under --smoke) on a
    two-level hub topology — 10 fully meshed backbone hosts with the
    rest hanging off them, O(n) physical links.  The scale the lockstep
    sharding exists for; honours ``--shards``.

``multitenant_50x24``
    The multi-tenant claim: 50 users x 24 hosts (8 x 6 under --smoke)
    under the open-loop lognormal workload of ``benchmarks.workloads``
    (login -> create fan-out -> locate -> tool_call -> gather), run
    twice — ``circuit_sharing`` on vs off.  Records per-op latency
    SLOs (p50/p95/p99) for both modes plus the steady-state inter-host
    connection counts: with sharing, co-located users' sibling
    channels collapse onto one circuit per host pair (target >= 5x
    fewer connections at full scale).  Harness-based; honours
    ``--shards``.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.runner [--smoke]
        [--label before|after] [--output BENCH_core.json]
        [--budget-s SECONDS] [--trace-out trace.json]
        [--shards K] [--check-identity] [--profile]

Wall-clock and counter deltas are merged into ``BENCH_core.json`` at
the repo root under the given label, so successive PRs accumulate a
before/after trajectory.  ``--smoke`` shrinks every scenario so CI can
assert the benchmarks still *run* without caring about timings;
``--budget-s`` additionally fails the run (exit status 2) when the
summed measured wall time exceeds the budget, so a hot-path regression
fails the build rather than slipping through.

``--shards K`` runs the harness-based locate scenarios on K lockstep
worker processes (``repro.netsim.parallel``); ``--check-identity``
additionally replays them single-threaded and fails on any divergence
in results or merged counters.  ``--profile`` wraps every scenario in
cProfile and prints the top 20 cumulative entries next to its result
(for a sharded scenario this profiles the coordinator process — the
workers' time shows up inside the pipe receives).

Every run also appends each scenario's wall time to
``wall_history.json`` (keyed by smoke/full mode and shard count);
under ``--smoke`` the run fails (exit status 3) when a scenario takes
more than twice its best recorded time, so CI catches gross wall-clock
regressions without timing full-size runs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

from repro import PPMClient, PPMConfig, install, spinner_spec
from repro.core.messages import Message, MsgKind
from repro.core.wire import message_size_bytes
from repro.netsim import HostClass, Network, Simulator, StreamConnection
from repro.perf import PERF
from repro.unixsim import World

#: The counters each scenario reports (a subset keeps the JSON legible).
_REPORTED = (
    "encodes_performed", "encode_cache_hits", "size_calls",
    "bytes_charged", "hmac_computed", "hmac_cache_hits",
    "dedup_checks", "dedup_entries_scanned", "dedup_entries_expired",
    "events_scheduled", "events_run", "events_cancelled",
    "events_fastpath", "heap_compactions",
    "gather_merges", "gather_records_merged",
    "stream_batched_deliveries", "stream_segments_drained",
    "stream_timer_rearms",
    "tree_forwards", "tree_prunes", "tree_repairs",
    "locate_cache_hits", "locate_cache_stale",
    "circuit_shares", "circuit_lanes_attached", "auth_cache_hits",
    "shard_windows", "cross_shard_msgs", "barrier_waits",
)


def _measure(fn):
    """Run ``fn`` with counters reset; return (result, metrics)."""
    PERF.reset()
    start = time.perf_counter()
    result = fn()
    wall_s = time.perf_counter() - start
    metrics = {"wall_s": round(wall_s, 4)}
    snapshot = PERF.snapshot()
    metrics.update({name: snapshot[name] for name in _REPORTED})
    if isinstance(result, dict):
        metrics.update(result)
    return metrics


# ----------------------------------------------------------------------
# Scenario 1: encode / size throughput
# ----------------------------------------------------------------------

def bench_encode(smoke: bool = False) -> dict:
    messages = 200 if smoke else 2_000
    hops = 8           # siblings that re-size the same message in flight
    payload = {"records": [{"pid": i, "command": "job-%d" % i,
                            "state": "running", "rusage":
                            {"utime_ms": 12.5 * i, "forks": i}}
                           for i in range(12)]}

    def run() -> dict:
        total = 0
        for index in range(messages):
            message = Message(kind=MsgKind.GATHER_REPLY, req_id=index,
                              origin="h00", user="lfc",
                              payload=payload, route=["h00", "h01"],
                              final_dest="h01")
            # The origin sizes the message once, then every forwarding
            # hop sizes it again (unchanged), then one hop extends the
            # route (broadcast pattern) and sizes the changed message.
            for _ in range(hops):
                total += message_size_bytes(message)
            message.route = message.route + ["h%02d" % (index % 40,)]
            total += message_size_bytes(message)
        return {"messages": messages, "sizes_per_message": hops + 1,
                "total_bytes": total}

    return _measure(run)


# ----------------------------------------------------------------------
# Scenario 2: broadcast flood over a full mesh
# ----------------------------------------------------------------------

def bench_broadcast_flood(smoke: bool = False) -> dict:
    n_hosts = 4 if smoke else 12
    config = PPMConfig(topology_policy="full_mesh")
    world = World(seed=23, config=config)
    names = ["h%02d" % i for i in range(n_hosts)]
    for name in names:
        world.add_host(name, HostClass.VAX_780)
    world.ethernet()
    world.add_user("lfc", 1001)
    install(world)
    world.write_recovery_file("lfc", [names[0]])
    origin = PPMClient(world, "lfc", names[0]).connect()
    for name in names[1:]:
        origin.create_process("job-%s" % name, host=name,
                              program=spinner_spec(None))
    world.run_for(2_000.0)  # let the full mesh finish wiring itself

    def run() -> dict:
        # A LOCATE for an unknown pid floods the whole mesh and every
        # duplicate arrival exercises the dedup engine.
        lpm = world.lpms[(names[0], "lfc")]
        done = []
        lpm.locate(names[-1], 99_999, done.append)
        world.run_until_true(lambda: bool(done), timeout_ms=30_000.0)
        forwards = sum(world.lpms[(name, "lfc")].broadcast.forwards
                       for name in names)
        duplicates = sum(
            world.lpms[(name, "lfc")].broadcast.duplicates_dropped
            for name in names)
        return {"n_hosts": n_hosts, "flood_forwards": forwards,
                "duplicates_dropped": duplicates,
                "sim_ms": round(world.sim.now_ms, 3)}

    return _measure(run)


# ----------------------------------------------------------------------
# Scenario 3: snapshot gather at 40 hosts (the A4 setup)
# ----------------------------------------------------------------------

def bench_snapshot(smoke: bool = False) -> dict:
    n_hosts = 6 if smoke else 40
    rounds = 1 if smoke else 3
    world = World(seed=17)
    names = ["h%02d" % i for i in range(n_hosts)]
    for name in names:
        world.add_host(name, HostClass.VAX_780)
    world.ethernet()
    world.add_user("lfc", 1001)
    install(world)
    world.write_recovery_file("lfc", [names[0]])
    origin = PPMClient(world, "lfc", names[0]).connect()
    for name in names[1:]:
        origin.create_process("job-%s" % name, host=name,
                              program=spinner_spec(None))
    origin.snapshot()  # warm-up, outside the measured window

    def run() -> dict:
        start_ms = world.sim.now_ms
        for _ in range(rounds):
            forest = origin.snapshot(prune=False)
            assert len(forest) == n_hosts - 1
        return {"n_hosts": n_hosts, "rounds": rounds,
                "snapshot_sim_ms": round(
                    (world.sim.now_ms - start_ms) / rounds, 3)}

    return _measure(run)


# ----------------------------------------------------------------------
# Scenario 4: the gather record merge in isolation, 40 sorted runs
# ----------------------------------------------------------------------

def bench_gather_merge(smoke: bool = False) -> dict:
    import heapq

    n_runs = 8 if smoke else 40
    per_run = 10 if smoke else 50
    rounds = 20 if smoke else 400
    # Each child run covers an interleaved slice of the host space, the
    # way sibling subtrees really do, so the merge genuinely interleaves
    # instead of concatenating pre-sorted blocks.
    runs = [[{"host": "h%04d" % (r + i * n_runs), "pid": 7,
              "state": "running"} for i in range(per_run)]
            for r in range(n_runs)]
    key = lambda record: (record["host"], record["pid"])  # noqa: E731

    def run() -> dict:
        # Old shape: each arriving child reply re-walks (copies) the
        # whole accumulated record list, and gpid order then needs a
        # global sort — O(N * k) record touches across the gather.
        touches_old = 0
        start = time.perf_counter()
        for _ in range(rounds):
            accumulated = []
            for child in runs:
                accumulated = accumulated + child
                touches_old += len(accumulated)
            merged = sorted(accumulated, key=key)
        rewalk_s = time.perf_counter() - start
        touches_old //= rounds

        # New shape: one linear k-way pass; every record is touched
        # exactly once per gather level.
        start = time.perf_counter()
        for _ in range(rounds):
            kway = list(heapq.merge(*runs, key=key))
        kway_s = time.perf_counter() - start
        touches_new = n_runs * per_run

        assert kway == merged
        return {"n_runs": n_runs, "records": n_runs * per_run,
                "rounds": rounds,
                "concat_rewalk_wall_s": round(rewalk_s, 4),
                "kway_merge_wall_s": round(kway_s, 4),
                "concat_rewalk_record_touches": touches_old,
                "kway_merge_record_touches": touches_new}

    return _measure(run)


# ----------------------------------------------------------------------
# Scenario 5: stream-transport flood — batched vs per-segment delivery
# ----------------------------------------------------------------------

def bench_stream_flood(smoke: bool = False) -> dict:
    n_circuits = 2 if smoke else 8
    sends = 50 if smoke else 1_000
    group = 10 if smoke else 100   # sends sharing one arrival time
    nbytes = 256

    def extra_for(k: int) -> float:
        # Every ``group`` sends step the extra delay, so arrivals form
        # sends/group distinct instants per circuit: the drain loop and
        # the timer re-arm both get exercised, not just one mega-batch.
        return (k // group) * 10.0

    def build():
        sim = Simulator(seed=7)
        net = Network(sim)
        names = []
        for i in range(n_circuits):
            names += ["s%02d" % i, "r%02d" % i]
        for name in names:
            net.add_node(name)
        net.ethernet(names)
        return sim, net

    def run() -> dict:
        # --- live code: batched per-circuit-direction delivery -------
        sim, net = build()
        arrivals_batched = [[] for _ in range(n_circuits)]
        endpoints = []
        for i in range(n_circuits):
            def acceptor(endpoint, payload, i=i):
                endpoint.on_message = (
                    lambda payload, ep, i=i:
                    arrivals_batched[i].append(sim.now_ms))
            net.node("r%02d" % i).listen("svc", acceptor)
            StreamConnection.connect(net, "s%02d" % i, "r%02d" % i, "svc",
                                     on_established=endpoints.append)
        sim.run_until_idle()
        assert len(endpoints) == n_circuits
        t0 = sim.now_ms
        base = PERF.snapshot()
        start = time.perf_counter()
        for endpoint in endpoints:
            for k in range(sends):
                endpoint.send(k, nbytes=nbytes,
                              extra_delay_ms=extra_for(k))
        sim.run_until_idle()
        batched_wall_s = time.perf_counter() - start
        delta = PERF.delta_since(base)
        pushes_batched = delta["events_scheduled"]

        # --- baseline: the seed's one-event-per-segment scheduler ----
        # Reproduced inline with the exact arrival arithmetic the old
        # ``transmit`` used (wire delay + extra, floored in-order), on a
        # fresh simulator started at the same instant, so the arrival
        # times must match float-for-float.
        sim2, net2 = build()
        sim2.clock.advance_to(t0)
        arrivals_seed = [[] for _ in range(n_circuits)]
        base = PERF.snapshot()
        start = time.perf_counter()
        for i in range(n_circuits):
            floor = 0.0
            for k in range(sends):
                # The seed's transmit routed every send individually.
                wire = net2.transit_delay_ms("s%02d" % i, "r%02d" % i,
                                             nbytes)
                arrival = max(sim2.now_ms + wire + extra_for(k), floor)
                floor = arrival
                sim2.schedule_at(
                    arrival,
                    lambda i=i: arrivals_seed[i].append(sim2.now_ms),
                    label="stream s%02d->r%02d" % (i, i))
        sim2.run_until_idle()
        per_segment_wall_s = time.perf_counter() - start
        pushes_per_segment = PERF.delta_since(base)["events_scheduled"]

        assert arrivals_batched == arrivals_seed, \
            "batched delivery changed arrival times"
        assert all(len(a) == sends for a in arrivals_batched)
        return {"n_circuits": n_circuits, "sends_per_circuit": sends,
                "arrival_groups": sends // group,
                "pushes_per_segment": pushes_per_segment,
                "pushes_batched": pushes_batched,
                "push_reduction_x": round(
                    pushes_per_segment / pushes_batched, 1),
                "arrivals_identical": True,
                "per_segment_wall_s": round(per_segment_wall_s, 4),
                "batched_wall_s": round(batched_wall_s, 4),
                "sim_ms": round(sim.now_ms, 3)}

    return _measure(run)


# ----------------------------------------------------------------------
# Scenario 6: span-tracing overhead — the same session, off vs on
# ----------------------------------------------------------------------

def bench_span_overhead(smoke: bool = False, trace_out=None) -> dict:
    from repro.perf.spans import enable_tracing

    n_hosts = 5 if smoke else 20
    rounds = 1 if smoke else 3

    def session(traced: bool):
        world = World(seed=29)
        names = ["h%02d" % i for i in range(n_hosts)]
        for name in names:
            world.add_host(name, HostClass.VAX_780)
        world.ethernet()
        world.add_user("lfc", 1001)
        install(world)
        world.write_recovery_file("lfc", [names[0]])
        tracer = enable_tracing(world.sim) if traced else None
        start = time.perf_counter()
        origin = PPMClient(world, "lfc", names[0]).connect()
        for name in names[1:]:
            origin.create_process("job-%s" % name, host=name,
                                  program=spinner_spec(None))
        for _ in range(rounds):
            forest = origin.snapshot(prune=False)
            assert len(forest) == n_hosts - 1
        wall_s = time.perf_counter() - start
        return world, tracer, wall_s

    def run() -> dict:
        world_off, _, wall_off_s = session(traced=False)
        world_on, tracer, wall_on_s = session(traced=True)
        result = {
            "n_hosts": n_hosts, "rounds": rounds,
            "sim_ms_off": round(world_off.sim.now_ms, 3),
            "sim_ms_on": round(world_on.sim.now_ms, 3),
            "wall_off_s": round(wall_off_s, 4),
            "wall_on_s": round(wall_on_s, 4),
            "wall_overhead_x": round(wall_on_s / wall_off_s, 2)
            if wall_off_s else None,
            "spans_kept": len(tracer.spans),
            "spans_dropped": tracer.dropped,
            "rpc_rtt_p95_ms":
                tracer.histograms["rpc_rtt"].summary()["p95_ms"],
        }
        if trace_out:
            from repro.perf.chrometrace import write_chrome_trace
            result["trace_events"] = write_chrome_trace(tracer, trace_out)
            result["trace_out"] = trace_out
        return result

    return _measure(run)


# ----------------------------------------------------------------------
# Scenario 7: doctor sweep — the ops layer's read-only guarantee
# ----------------------------------------------------------------------

def bench_doctor_sweep(smoke: bool = False) -> dict:
    from repro.ops import probe_world, run_doctor

    n_hosts = 6 if smoke else 40
    sweeps = 20 if smoke else 200
    world = World(seed=31)
    names = ["h%02d" % i for i in range(n_hosts)]
    for name in names:
        world.add_host(name, HostClass.VAX_780)
    world.ethernet()
    world.add_user("lfc", 1001)
    install(world)
    world.write_recovery_file("lfc", [names[0]])
    origin = PPMClient(world, "lfc", names[0]).connect()
    for name in names[1:]:
        origin.create_process("job-%s" % name, host=name,
                              program=spinner_spec(None))
    world.run_for(2_000.0)

    def run() -> dict:
        # The contract OPERATIONS.md sells: probing is pure observation.
        # Any event the probe scheduled or any clock tick it consumed
        # would shift every sim_ms after it — so assert both are frozen.
        sim_before = world.sim.now_ms
        events_before = PERF.snapshot()["events_scheduled"]
        healthy = 0
        checks_run = 0
        for _ in range(sweeps):
            report = run_doctor(probe_world(world))
            healthy += report.ok
            checks_run += len(report.results)
        assert world.sim.now_ms == sim_before, \
            "doctor sweep advanced the simulated clock"
        assert PERF.snapshot()["events_scheduled"] == events_before, \
            "doctor sweep scheduled simulator events"
        assert healthy == sweeps
        return {"n_hosts": n_hosts, "sweeps": sweeps,
                "checks_run": checks_run,
                "doctor_runs": PERF.snapshot()["doctor_runs"],
                "sim_ms": round(world.sim.now_ms, 3)}

    return _measure(run)


def bench_watch_steady(smoke: bool = False) -> dict:
    from repro.ops import Watcher, probe_world, run_doctor
    from repro.perf import MetricsSampler

    n_hosts = 6 if smoke else 40
    sweeps = 20 if smoke else 200
    world = World(seed=31)
    names = ["h%02d" % i for i in range(n_hosts)]
    for name in names:
        world.add_host(name, HostClass.VAX_780)
    world.ethernet()
    world.add_user("lfc", 1001)
    install(world)
    world.write_recovery_file("lfc", [names[0]])
    origin = PPMClient(world, "lfc", names[0]).connect()
    for name in names[1:]:
        origin.create_process("job-%s" % name, host=name,
                              program=spinner_spec(None))
    world.run_for(2_000.0)

    def run() -> dict:
        # The watch loop on top of the doctor's read-only contract:
        # per-sweep edge detection plus full time-series sampling must
        # add zero simulator perturbation (frozen clock, zero events)
        # and bounded memory (every ring capped at its capacity).
        sampler = MetricsSampler(capacity=64)
        watcher = Watcher(sampler=sampler)
        sim_before = world.sim.now_ms
        events_before = PERF.snapshot()["events_scheduled"]
        for _ in range(sweeps):
            view = probe_world(world)
            watcher.feed(run_doctor(view), view.probed_at_ms)
        assert world.sim.now_ms == sim_before, \
            "watch sweep advanced the simulated clock"
        assert PERF.snapshot()["events_scheduled"] == events_before, \
            "watch sweep scheduled simulator events"
        counters = PERF.snapshot()
        assert counters["watch_sweeps"] == sweeps
        assert counters["watch_samples"] == sweeps
        assert counters["watch_edges"] == 0, \
            "a healthy steady state has no incident edges"
        assert all(len(series) <= 64
                   for series in sampler.series.values()), \
            "ring buffers must stay within their capacity"
        return {"n_hosts": n_hosts, "sweeps": sweeps,
                "watch_sweeps": counters["watch_sweeps"],
                "watch_samples": counters["watch_samples"],
                "series_tracked": len(sampler.series),
                "sim_ms": round(world.sim.now_ms, 3)}

    return _measure(run)


# ----------------------------------------------------------------------
# Scenarios 9/10: steady-state LOCATE at scale (harness-based, shardable)
# ----------------------------------------------------------------------

def _scenario_metrics(outcome) -> dict:
    """Shape a :class:`ShardedOutcome` like :func:`_measure`'s dict."""
    measure = outcome.measure
    metrics = {"wall_s": round(measure["wall_s"], 4)}
    counters = measure["counters"]
    metrics.update({name: counters[name] for name in _REPORTED})
    if isinstance(outcome.result, dict):
        metrics.update(outcome.result)
    metrics["shards"] = outcome.shards
    if outcome.shards > 1:
        metrics["barrier_rounds"] = outcome.barrier_rounds
        metrics["cross_shard_ships"] = outcome.ships
    return metrics


def _bench_scenario(scenario, kwargs: dict, shards: int,
                    check_identity: bool) -> dict:
    from repro.netsim.parallel import identity_diff, run_scenario

    outcome = run_scenario(scenario, kwargs=kwargs, shards=shards)
    metrics = _scenario_metrics(outcome)
    if check_identity and shards > 1:
        local = run_scenario(scenario, kwargs=kwargs, shards=1)
        diffs = identity_diff(local, outcome)
        metrics["identity_ok"] = not diffs
        metrics["single_thread_wall_s"] = round(local.measure["wall_s"], 4)
        if diffs:
            raise AssertionError(
                "%d-shard run diverged from single-threaded: %s"
                % (shards, "; ".join(diffs)))
    return metrics


def bench_locate(smoke: bool = False, shards: int = 1,
                 check_identity: bool = False) -> dict:
    from .scenarios import locate_scenario

    kwargs = dict(n_hosts=24 if smoke else 200,
                  mesh_locates=2,                     # each refloods the mesh
                  sparse_locates=5 if smoke else 8)   # cached, nearly free
    return _bench_scenario(locate_scenario, kwargs, shards, check_identity)


def bench_locate_500(smoke: bool = False, shards: int = 1,
                     check_identity: bool = False) -> dict:
    from .scenarios import locate_scenario

    kwargs = dict(n_hosts=48 if smoke else 500,
                  sparse_locates=5 if smoke else 8,
                  policies=("sparse",),
                  hubs=4 if smoke else 10)
    return _bench_scenario(locate_scenario, kwargs, shards, check_identity)


def bench_multitenant(smoke: bool = False, shards: int = 1,
                      check_identity: bool = False) -> dict:
    from .scenarios import multitenant_scenario

    kwargs = dict(n_users=8 if smoke else 50,
                  n_hosts=6 if smoke else 24,
                  gateways=2 if smoke else 4,
                  fanout=3 if smoke else 10,
                  horizon_ms=20_000.0 if smoke else 120_000.0)
    return _bench_scenario(multitenant_scenario, kwargs, shards,
                           check_identity)


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------

SCENARIOS = {
    "encode_throughput": bench_encode,
    "broadcast_flood": bench_broadcast_flood,
    "snapshot_40_hosts": bench_snapshot,
    "gather_merge_40": bench_gather_merge,
    "stream_flood": bench_stream_flood,
    "span_overhead": bench_span_overhead,
    "doctor_sweep": bench_doctor_sweep,
    "watch_steady": bench_watch_steady,
    "locate_200_hosts": bench_locate,
    "locate_500_hosts": bench_locate_500,
    "multitenant_50x24": bench_multitenant,
}

#: Scenarios that run through the shard harness and honour --shards.
_SHARDABLE = ("locate_200_hosts", "locate_500_hosts",
              "multitenant_50x24")


def _profiled(call):
    """Run ``call()`` under cProfile; return (result, top-20 text)."""
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = call()
    finally:
        profiler.disable()
    stream = io.StringIO()
    pstats.Stats(profiler, stream=stream).sort_stats(
        "cumulative").print_stats(20)
    return result, stream.getvalue()


def run_all(smoke: bool = False, trace_out=None, shards: int = 1,
            check_identity: bool = False, profile: bool = False) -> dict:
    results = {}
    for name, fn in SCENARIOS.items():
        print("running %s%s ..." % (name, " (smoke)" if smoke else ""),
              flush=True)
        # Scope the process-global counter registry per scenario: the
        # reset covers world construction too (``_measure`` resets again
        # around the measured window), and the final reset below keeps
        # the last scenario's counts from bleeding into whatever runs
        # in this process next.
        PERF.reset()
        if name == "span_overhead":
            call = lambda: fn(smoke=smoke, trace_out=trace_out)  # noqa: E731
        elif name in _SHARDABLE:
            call = lambda fn=fn: fn(smoke=smoke, shards=shards,  # noqa: E731
                                    check_identity=check_identity)
        else:
            call = lambda fn=fn: fn(smoke=smoke)  # noqa: E731
        if profile:
            results[name], report = _profiled(call)
        else:
            results[name], report = call(), None
        print("  %s" % (json.dumps(results[name], sort_keys=True),))
        if report is not None:
            print("  profile (top 20 cumulative):")
            for line in report.splitlines():
                print("    %s" % (line,))
    PERF.reset()
    return results


# ----------------------------------------------------------------------
# Wall-clock history (regression guard for --smoke)
# ----------------------------------------------------------------------

#: Entries kept per scenario; older measurements roll off.
_HISTORY_LIMIT = 20
#: A smoke scenario this fast is all noise; never flag it.
_HISTORY_FLOOR_S = 0.5


def update_wall_history(path: str, mode: str, results: dict,
                        enforce: bool) -> list:
    """Append each scenario's wall time to the history file and return
    regressions: scenarios slower than 2x their best recorded time.

    Histories are keyed by mode (smoke/full) and shard count — a
    4-shard wall time is not comparable to a single-threaded one.  Only
    ``enforce`` (smoke) runs report regressions, and only above an
    absolute floor, so timing noise on sub-second scenarios never fails
    a build.
    """
    data = {"schema": 1, "modes": {}}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    bucket = data.setdefault("modes", {}).setdefault(mode, {})
    stamp = time.strftime("%Y-%m-%d %H:%M:%S")
    regressions = []
    for name, metrics in results.items():
        shard_count = metrics.get("shards", 1)
        key = name if shard_count == 1 else "%s@%d" % (name, shard_count)
        history = bucket.setdefault(key, [])
        wall_s = metrics["wall_s"]
        prior = [entry["wall_s"] for entry in history]
        if enforce and prior:
            best = min(prior)
            if wall_s > 2.0 * best and wall_s > _HISTORY_FLOOR_S:
                regressions.append((key, wall_s, best))
        history.append({"wall_s": wall_s, "at": stamp})
        del history[:-_HISTORY_LIMIT]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return regressions


def merge_into(path: str, label: str, results: dict) -> None:
    data = {"schema": 1, "benchmarks": {}}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    benches = data.setdefault("benchmarks", {})
    for name, metrics in results.items():
        benches.setdefault(name, {})[label] = metrics
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes; assert completion, not speed")
    parser.add_argument("--label", default="after",
                        help="label to file results under (before/after)")
    parser.add_argument("--output",
                        default=os.path.join(REPO_ROOT, "BENCH_core.json"),
                        help="JSON trajectory file to merge into")
    parser.add_argument("--no-write", action="store_true",
                        help="run and print without touching the file")
    parser.add_argument("--budget-s", type=float, default=None,
                        help="fail (exit 2) if the summed measured wall "
                             "time exceeds this many seconds")
    parser.add_argument("--trace-out", default=None,
                        help="export the span_overhead scenario's traced "
                             "run as Chrome trace-event JSON to this path")
    parser.add_argument("--shards", type=int, default=1,
                        help="lockstep worker processes for the "
                             "harness-based locate scenarios (1 = "
                             "single-threaded)")
    parser.add_argument("--check-identity", action="store_true",
                        help="replay sharded scenarios single-threaded "
                             "and fail on any result/counter divergence")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile each scenario; print the top 20 "
                             "cumulative entries next to its result")
    args = parser.parse_args(argv)
    results = run_all(smoke=args.smoke, trace_out=args.trace_out,
                      shards=args.shards,
                      check_identity=args.check_identity,
                      profile=args.profile)
    if not args.no_write and not args.smoke:
        merge_into(args.output, args.label, results)
        print("merged under label %r into %s" % (args.label, args.output))
    if not args.no_write:
        regressions = update_wall_history(
            os.path.join(REPO_ROOT, "wall_history.json"),
            "smoke" if args.smoke else "full", results,
            enforce=args.smoke)
        if regressions:
            for key, wall_s, best in regressions:
                print("WALL-CLOCK REGRESSION: %s took %.3fs, more than "
                      "2x its best recorded %.3fs" % (key, wall_s, best))
            return 3
    if args.budget_s is not None:
        total_wall_s = sum(metrics["wall_s"] for metrics in results.values())
        print("total measured wall time: %.3fs (budget %.3fs)"
              % (total_wall_s, args.budget_s))
        if total_wall_s > args.budget_s:
            print("TIMING BUDGET EXCEEDED: %.3fs > %.3fs"
                  % (total_wall_s, args.budget_s))
            return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
