"""Hot-path microbenchmarks, writing the repo's perf trajectory.

Three scenarios cover the paths every experiment in the reproduction
runs through:

``encode_throughput``
    Message serialisation and size accounting, including hop-by-hop
    route growth (the broadcast-forwarding pattern that re-sizes the
    same message at every hop).

``broadcast_flood``
    One LOCATE broadcast over a full-mesh sibling graph — the
    duplicate-suppression worst case: every LPM floods every sibling,
    and the dedup seen-set absorbs the quadratic duplicate storm.

``snapshot_40_hosts``
    The A4 stress setup (section 8 "into the tens of nodes"): a
    40-host star session, three snapshot gathers.

``gather_merge_40``
    The gather layer's record merge in isolation at the 40-host scale:
    the old shape (every child merge re-walks the accumulated record
    list, then one global sort reaches gpid order) against the single
    k-way ``heapq.merge`` pass over already-sorted runs, with
    deterministic record-touch counts for both.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.runner [--smoke]
        [--label before|after] [--output BENCH_core.json]

Wall-clock and counter deltas are merged into ``BENCH_core.json`` at
the repo root under the given label, so successive PRs accumulate a
before/after trajectory.  ``--smoke`` shrinks every scenario so CI can
assert the benchmarks still *run* without caring about timings.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

from repro import PPMClient, PPMConfig, install, spinner_spec
from repro.core.messages import Message, MsgKind
from repro.core.wire import message_size_bytes
from repro.netsim import HostClass
from repro.perf import PERF
from repro.unixsim import World

#: The counters each scenario reports (a subset keeps the JSON legible).
_REPORTED = (
    "encodes_performed", "encode_cache_hits", "size_calls",
    "bytes_charged", "hmac_computed", "hmac_cache_hits",
    "dedup_checks", "dedup_entries_scanned", "dedup_entries_expired",
    "events_run", "events_cancelled", "events_fastpath",
    "heap_compactions", "gather_merges", "gather_records_merged",
)


def _measure(fn):
    """Run ``fn`` with counters reset; return (result, metrics)."""
    PERF.reset()
    start = time.perf_counter()
    result = fn()
    wall_s = time.perf_counter() - start
    metrics = {"wall_s": round(wall_s, 4)}
    snapshot = PERF.snapshot()
    metrics.update({name: snapshot[name] for name in _REPORTED})
    if isinstance(result, dict):
        metrics.update(result)
    return metrics


# ----------------------------------------------------------------------
# Scenario 1: encode / size throughput
# ----------------------------------------------------------------------

def bench_encode(smoke: bool = False) -> dict:
    messages = 200 if smoke else 2_000
    hops = 8           # siblings that re-size the same message in flight
    payload = {"records": [{"pid": i, "command": "job-%d" % i,
                            "state": "running", "rusage":
                            {"utime_ms": 12.5 * i, "forks": i}}
                           for i in range(12)]}

    def run() -> dict:
        total = 0
        for index in range(messages):
            message = Message(kind=MsgKind.GATHER_REPLY, req_id=index,
                              origin="h00", user="lfc",
                              payload=payload, route=["h00", "h01"],
                              final_dest="h01")
            # The origin sizes the message once, then every forwarding
            # hop sizes it again (unchanged), then one hop extends the
            # route (broadcast pattern) and sizes the changed message.
            for _ in range(hops):
                total += message_size_bytes(message)
            message.route = message.route + ["h%02d" % (index % 40,)]
            total += message_size_bytes(message)
        return {"messages": messages, "sizes_per_message": hops + 1,
                "total_bytes": total}

    return _measure(run)


# ----------------------------------------------------------------------
# Scenario 2: broadcast flood over a full mesh
# ----------------------------------------------------------------------

def bench_broadcast_flood(smoke: bool = False) -> dict:
    n_hosts = 4 if smoke else 12
    config = PPMConfig(topology_policy="full_mesh")
    world = World(seed=23, config=config)
    names = ["h%02d" % i for i in range(n_hosts)]
    for name in names:
        world.add_host(name, HostClass.VAX_780)
    world.ethernet()
    world.add_user("lfc", 1001)
    install(world)
    world.write_recovery_file("lfc", [names[0]])
    origin = PPMClient(world, "lfc", names[0]).connect()
    for name in names[1:]:
        origin.create_process("job-%s" % name, host=name,
                              program=spinner_spec(None))
    world.run_for(2_000.0)  # let the full mesh finish wiring itself

    def run() -> dict:
        # A LOCATE for an unknown pid floods the whole mesh and every
        # duplicate arrival exercises the dedup engine.
        lpm = world.lpms[(names[0], "lfc")]
        done = []
        lpm.locate(names[-1], 99_999, done.append)
        world.run_until_true(lambda: bool(done), timeout_ms=30_000.0)
        forwards = sum(world.lpms[(name, "lfc")].broadcast.forwards
                       for name in names)
        duplicates = sum(
            world.lpms[(name, "lfc")].broadcast.duplicates_dropped
            for name in names)
        return {"n_hosts": n_hosts, "flood_forwards": forwards,
                "duplicates_dropped": duplicates,
                "sim_ms": round(world.sim.now_ms, 3)}

    return _measure(run)


# ----------------------------------------------------------------------
# Scenario 3: snapshot gather at 40 hosts (the A4 setup)
# ----------------------------------------------------------------------

def bench_snapshot(smoke: bool = False) -> dict:
    n_hosts = 6 if smoke else 40
    rounds = 1 if smoke else 3
    world = World(seed=17)
    names = ["h%02d" % i for i in range(n_hosts)]
    for name in names:
        world.add_host(name, HostClass.VAX_780)
    world.ethernet()
    world.add_user("lfc", 1001)
    install(world)
    world.write_recovery_file("lfc", [names[0]])
    origin = PPMClient(world, "lfc", names[0]).connect()
    for name in names[1:]:
        origin.create_process("job-%s" % name, host=name,
                              program=spinner_spec(None))
    origin.snapshot()  # warm-up, outside the measured window

    def run() -> dict:
        start_ms = world.sim.now_ms
        for _ in range(rounds):
            forest = origin.snapshot(prune=False)
            assert len(forest) == n_hosts - 1
        return {"n_hosts": n_hosts, "rounds": rounds,
                "snapshot_sim_ms": round(
                    (world.sim.now_ms - start_ms) / rounds, 3)}

    return _measure(run)


# ----------------------------------------------------------------------
# Scenario 4: the gather record merge in isolation, 40 sorted runs
# ----------------------------------------------------------------------

def bench_gather_merge(smoke: bool = False) -> dict:
    import heapq

    n_runs = 8 if smoke else 40
    per_run = 10 if smoke else 50
    rounds = 20 if smoke else 400
    # Each child run covers an interleaved slice of the host space, the
    # way sibling subtrees really do, so the merge genuinely interleaves
    # instead of concatenating pre-sorted blocks.
    runs = [[{"host": "h%04d" % (r + i * n_runs), "pid": 7,
              "state": "running"} for i in range(per_run)]
            for r in range(n_runs)]
    key = lambda record: (record["host"], record["pid"])  # noqa: E731

    def run() -> dict:
        # Old shape: each arriving child reply re-walks (copies) the
        # whole accumulated record list, and gpid order then needs a
        # global sort — O(N * k) record touches across the gather.
        touches_old = 0
        start = time.perf_counter()
        for _ in range(rounds):
            accumulated = []
            for child in runs:
                accumulated = accumulated + child
                touches_old += len(accumulated)
            merged = sorted(accumulated, key=key)
        rewalk_s = time.perf_counter() - start
        touches_old //= rounds

        # New shape: one linear k-way pass; every record is touched
        # exactly once per gather level.
        start = time.perf_counter()
        for _ in range(rounds):
            kway = list(heapq.merge(*runs, key=key))
        kway_s = time.perf_counter() - start
        touches_new = n_runs * per_run

        assert kway == merged
        return {"n_runs": n_runs, "records": n_runs * per_run,
                "rounds": rounds,
                "concat_rewalk_wall_s": round(rewalk_s, 4),
                "kway_merge_wall_s": round(kway_s, 4),
                "concat_rewalk_record_touches": touches_old,
                "kway_merge_record_touches": touches_new}

    return _measure(run)


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------

SCENARIOS = {
    "encode_throughput": bench_encode,
    "broadcast_flood": bench_broadcast_flood,
    "snapshot_40_hosts": bench_snapshot,
    "gather_merge_40": bench_gather_merge,
}


def run_all(smoke: bool = False) -> dict:
    results = {}
    for name, fn in SCENARIOS.items():
        print("running %s%s ..." % (name, " (smoke)" if smoke else ""),
              flush=True)
        results[name] = fn(smoke=smoke)
        print("  %s" % (json.dumps(results[name], sort_keys=True),))
    return results


def merge_into(path: str, label: str, results: dict) -> None:
    data = {"schema": 1, "benchmarks": {}}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    benches = data.setdefault("benchmarks", {})
    for name, metrics in results.items():
        benches.setdefault(name, {})[label] = metrics
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes; assert completion, not speed")
    parser.add_argument("--label", default="after",
                        help="label to file results under (before/after)")
    parser.add_argument("--output",
                        default=os.path.join(REPO_ROOT, "BENCH_core.json"),
                        help="JSON trajectory file to merge into")
    parser.add_argument("--no-write", action="store_true",
                        help="run and print without touching the file")
    args = parser.parse_args(argv)
    results = run_all(smoke=args.smoke)
    if not args.no_write and not args.smoke:
        merge_into(args.output, args.label, results)
        print("merged under label %r into %s" % (args.label, args.output))
    return 0


if __name__ == "__main__":
    sys.exit(main())
