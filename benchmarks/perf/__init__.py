"""Hot-path microbenchmarks (see ``runner.py``)."""
