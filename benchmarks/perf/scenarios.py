"""Harness-based benchmark scenarios — runnable on 1..K lockstep shards.

The LOCATE-at-scale benchmarks live here as *scenario functions* under
the ``repro.netsim.parallel`` contract (``scenario(harness, **kwargs)
-> dict``): world construction is plain replicated code, and everything
after ``harness.attach`` drives the simulation only through the harness
(``run_for`` / ``run_until_true`` / ``call_on``) and reads results only
through coordinated reductions (``sum_hosts``) or authority-side
asserts.  The same function therefore runs bit-identically on the
single-threaded :class:`~repro.netsim.shard.LocalHarness` and on K
forked lockstep workers — which is what ``--check-identity`` verifies.

Two rules this module obeys that the old inline benchmark did not need:

* **Build every world before the first attach.**  Construction must be
  replicated byte-for-byte in every worker; creating circuits in one
  world while another is attached would consume per-shard ids.

* **Settle before coordinated reads.**  After a predicate stop,
  non-authority workers may have overrun the stop instant by up to one
  lookahead window; a ``run_for`` longer than one window realigns every
  worker's clock before ``sum_hosts`` snapshots per-host statistics.
  (The single-threaded harness performs the same ``run_for``, so the
  numbers stay comparable — the drain window is simply part of the
  scenario.)
"""

from __future__ import annotations

from repro import PPMClient, PPMConfig, install, spinner_spec
from repro.netsim import HostClass
from repro.unixsim import World

#: Post-locate drain: lets duplicate storms, prune feedback, and any
#: worker overrun settle before per-host statistics are snapshotted.
DRAIN_MS = 10_000.0


def _flood_forwards(harness, world) -> int:
    """Total broadcast forwards across the fleet (coordinated read)."""
    return harness.sum_hosts(
        lambda name: world.lpms[(name, "lfc")].broadcast.forwards
        if (name, "lfc") in world.lpms else 0)


def _open_links(harness, world) -> int:
    """Open overlay links across the fleet (each counted at both ends)."""
    return harness.sum_hosts(
        lambda name: len(world.lpms[(name, "lfc")].transport.authenticated())
        if (name, "lfc") in world.lpms else 0) // 2


def _build_world(policy: str, n_hosts: int, seed: int, hubs: int):
    """Build one fully converged PPM world (replicated construction).

    ``hubs == 0`` wires the classic single-Ethernet full mesh of links.
    ``hubs > 0`` builds the two-level topology used at 500 hosts: the
    first ``hubs`` hosts form a fully meshed backbone and every other
    host hangs off one hub, round-robin — O(n) links instead of O(n²),
    which keeps the physical-path BFS tractable at that scale.
    """
    config = PPMConfig(topology_policy=policy)
    world = World(seed=seed, config=config)
    names = ["h%03d" % i for i in range(n_hosts)]
    for name in names:
        world.add_host(name, HostClass.VAX_780)
    if hubs:
        hub_names = names[:hubs]
        world.ethernet(hub_names)
        wire = world.cost_model.wire_ms
        for i, leaf in enumerate(names[hubs:]):
            world.network.add_link(leaf, hub_names[i % hubs],
                                   latency_ms=wire)
    else:
        world.ethernet()
    world.add_user("lfc", 1001)
    install(world)
    world.write_recovery_file("lfc", [names[0]])
    origin = PPMClient(world, "lfc", names[0]).connect()
    target = None
    for name in names[1:]:
        gpid = origin.create_process("job-%s" % name, host=name,
                                     program=spinner_spec(None))
        if name == names[-1]:
            target = gpid

    def links() -> int:
        return sum(
            len(world.lpms[(n, "lfc")].transport.authenticated())
            for n in names if (n, "lfc") in world.lpms) // 2

    if policy == "full_mesh":
        want = n_hosts * (n_hosts - 1) // 2
        world.run_until_true(lambda: links() == want,
                             timeout_ms=3_600_000.0)
    else:
        # Sparse: wait for membership gossip to converge, then let the
        # debounced rewiring finish opening neighbor links.
        world.run_until_true(
            lambda: all(
                len(world.lpms[(n, "lfc")].topology.membership) == n_hosts
                for n in names),
            timeout_ms=3_600_000.0)
        world.run_for(10_000.0)
    return world, names, target


def _locate_seq(harness, world, names, target, count: int,
                policy: str) -> None:
    """Sequential lookups from a non-origin host, each seeing the caches
    (route, tree, negative) the previous one left behind.

    The locate call is issued as an owned event on the caller host (the
    driver, so its reply list is live on the authority worker), and each
    completion is awaited with a coordinated predicate stop.  The settle
    timeout must outlast the mesh duplicate storm: the caller's
    dispatcher drains ~n load-scaled duplicate arrivals before it can
    process the LOCATE_ACK.
    """
    results: list = []
    caller = names[1]
    for k in range(count):
        def issue() -> None:
            world.lpms[(caller, "lfc")].locate(
                target.host, target.pid, results.append,
                timeout_ms=600_000.0)

        harness.call_on(caller, issue)
        found = harness.run_until_true(lambda k=k: len(results) == k + 1,
                                       timeout_ms=1_200_000.0)
        assert found, "locate %d timed out on the %s overlay" % (k, policy)

    def verify() -> None:
        assert all(r is not None for r in results), \
            "locate failed on the %s overlay" % (policy,)

    harness.on_authority(verify)


def locate_scenario(harness, n_hosts: int = 200, mesh_locates: int = 2,
                    sparse_locates: int = 8,
                    policies=("full_mesh", "sparse"), hubs: int = 0,
                    seed: int = 31) -> dict:
    """Steady-state LOCATE cost at scale — full mesh vs sparse overlay.

    The harness-based port of the ``locate_200_hosts`` benchmark (see
    the module docstring of ``benchmarks.perf.runner`` for what it
    measures); ``locate_500_hosts`` runs the same function sparse-only
    on the two-level hub topology.
    """
    worlds = {policy: _build_world(policy, n_hosts, seed, hubs)
              for policy in policies}

    harness.begin_measure()
    result = {"n_hosts": n_hosts}
    per_locate = {}
    for policy in policies:
        world, names, target = worlds[policy]
        harness.attach(world.network, names[1])
        base = _flood_forwards(harness, world)
        _locate_seq(harness, world, names, target, 1, policy)
        # The reply races the flood it rode in on: let duplicate
        # arrivals and prune feedback drain before the steady window,
        # so the tree is fully pruned when it's measured.
        harness.run_for(DRAIN_MS)
        warm = _flood_forwards(harness, world) - base
        repeats = mesh_locates if policy == "full_mesh" else sparse_locates
        _locate_seq(harness, world, names, target, repeats, policy)
        harness.run_for(DRAIN_MS)
        steady = _flood_forwards(harness, world) - base - warm
        per_locate[policy] = steady / repeats
        result.update({
            "links_%s" % policy: _open_links(harness, world),
            "warm_flood_forwards_%s" % policy: warm,
            "steady_locates_%s" % policy: repeats,
            "steady_forwards_per_locate_%s" % policy:
                round(per_locate[policy], 1),
        })

        if policy == "sparse":
            # A failed lookup on a routeless host floods once — in tree
            # mode, ~n−1 forwards — and its repeat is refused from the
            # negative cache with no traffic at all.
            caller = names[1]
            misses: list = []
            before_miss = _flood_forwards(harness, world)
            for k in range(2):
                harness.call_on(
                    caller,
                    lambda: world.lpms[(caller, "lfc")].locate(
                        "h-gone", 99_999, misses.append))
                found = harness.run_until_true(
                    lambda k=k: len(misses) == k + 1,
                    timeout_ms=120_000.0)
                assert found, "miss lookup %d timed out" % (k,)
            harness.run_for(DRAIN_MS)
            harness.on_authority(
                lambda: None if misses == [None, None] else
                (_ for _ in ()).throw(AssertionError(
                    "negative lookups resolved: %r" % (misses,))))
            result["miss_flood_forwards_sparse"] = \
                _flood_forwards(harness, world) - before_miss
            result["sim_ms_sparse"] = round(harness.now, 3)
        harness.detach()

    if "full_mesh" in per_locate and "sparse" in per_locate:
        result["link_reduction_x"] = round(
            result["links_full_mesh"] / max(1, result["links_sparse"]), 1)
        result["forward_reduction_x"] = round(
            per_locate["full_mesh"] / max(1.0, per_locate["sparse"]), 1)
    harness.end_measure()
    return result


def _pool_of(world, name: str):
    return getattr(world.hosts[name], "_circuit_pool", None)


def _physical_links(harness, world, sharing: bool) -> int:
    """Steady-state inter-host connections, counted once per circuit.

    With sharing on, the physical connections are the pools' circuits;
    with sharing off every authenticated sibling link is its own
    connection (the per-host lambda sums that host's LPMs only, so the
    read stays owned under sharding).
    """
    if sharing:
        return harness.sum_hosts(
            lambda name: 0 if _pool_of(world, name) is None
            else _pool_of(world, name).open_circuit_count()) // 2
    return harness.sum_hosts(
        lambda name: sum(
            len(lpm.transport.authenticated())
            for (host, _user), lpm in world.lpms.items()
            if host == name)) // 2


def multitenant_scenario(harness, n_users: int = 50, n_hosts: int = 24,
                         gateways: int = 4, fanout: int = 10,
                         horizon_ms: float = 120_000.0,
                         seed: int = 47) -> dict:
    """M users x N hosts under the open-loop workload — shared circuits
    vs one private circuit per user pair (``benchmarks.workloads``).

    Runs the identical lognormal session schedule twice, with
    ``circuit_sharing`` on and off, and reports per-op latency SLOs
    plus the steady-state inter-host connection count of each mode.
    The multi-tenancy claim is the ratio: co-located users' sibling
    channels collapse onto one circuit per host pair.
    """
    from benchmarks.workloads import (build_multitenant_world,
                                      merge_gathered, schedule_sessions,
                                      slo_block)

    modes = (("shared", True), ("private", False))
    worlds = {}
    for mode, sharing in modes:
        world, names, users, homes = build_multitenant_world(
            n_users, n_hosts, gateways, seed, sharing)
        state = schedule_sessions(world, users, homes,
                                  leaf_names=names[gateways:],
                                  fanout=fanout, horizon_ms=horizon_ms,
                                  seed=seed + 1)
        worlds[mode] = (world, names, state)

    harness.begin_measure()
    result = {"n_users": n_users, "n_hosts": n_hosts,
              "gateways": gateways, "fanout": fanout}
    failed = 0
    for mode, sharing in modes:
        world, names, state = worlds[mode]
        harness.attach(world.network, names[0])
        harness.run_for(horizon_ms + DRAIN_MS)
        # Open-loop arrivals have a heavy tail; top up in bounded slices
        # until every session has reported done (or failed).
        rounds = 0
        while (harness.sum_hosts(lambda n: state.done.get(n, 0)) < n_users
               and rounds < 60):
            harness.run_for(30_000.0)
            rounds += 1
        completed = harness.sum_hosts(lambda n: state.done.get(n, 0))
        assert completed == n_users, \
            "%s: only %d/%d sessions finished" % (mode, completed, n_users)
        failed += harness.sum_hosts(lambda n: state.failures.get(n, 0))
        # Sessions leave their fan-out processes running, so the links
        # counted here are the steady state a populated fleet holds.
        result["links_%s" % mode] = _physical_links(harness, world,
                                                    sharing)
        if sharing:
            result["lanes_shared"] = harness.sum_hosts(
                lambda name: 0 if _pool_of(world, name) is None
                else _pool_of(world, name).lane_count()) // 2
        merged = merge_gathered(
            harness.gather_hosts(lambda name: state.hist_state(name)))
        result["slo_%s" % mode] = slo_block(merged)
        result["sim_ms_%s" % mode] = round(harness.now, 3)
        harness.detach()

    result["failed_sessions"] = failed
    result["link_reduction_x"] = round(
        result["links_private"] / max(1, result["links_shared"]), 1)
    harness.end_measure()
    return result
