"""Table 1: estimated 112-byte kernel-to-LPM message delivery time.

Paper values (ms) by load band and host type::

    load band   VAX 11/780   VAX 11/750   SUN II
    (0, 1]         7.2          7.2         8.31
    (1, 2]         9.8          9.6        14.13
    (2, 3]        13.6         12.8        22.0
    (3, 4]         -           18.9        42.7

Methodology: per (host type, band) a fresh simulated host runs enough
CPU spinners to drive its run-queue load average into the band; the
measured LPM's adopted target process is toggled with SIGSTOP/SIGCONT so
the modified system calls post event messages through the kernel socket,
and the delivery delay of each message is sampled.
"""

import statistics

import pytest

from repro.bench.scenarios import TABLE1_PAPER, build_table1_world
from repro.bench.tables import comparison_table, write_result
from repro.bench.workloads import measure_kernel_deliveries, raise_load_to_band
from repro.netsim import HostClass

from .conftest import assert_close_to_paper

BANDS = [(0, 1), (1, 2), (2, 3), (3, 4)]


def measure_cell(host_class, band, samples=12):
    world, host, lpm, _client, target = build_table1_world(host_class)
    raise_load_to_band(world, host, band)
    delays = measure_kernel_deliveries(world, host, lpm, target.pid,
                                       band, samples=samples)
    return statistics.mean(delays)


def run_table1():
    rows = []
    for host_class in (HostClass.VAX_780, HostClass.VAX_750,
                       HostClass.SUN_2):
        for band in BANDS:
            paper = TABLE1_PAPER[host_class].get(band)
            measured = measure_cell(host_class, band)
            rows.append({"case": "%s la in (%d, %d]"
                                 % (host_class.value, band[0], band[1]),
                         "paper_ms": paper, "measured_ms": measured,
                         "host_class": host_class, "band": band})
    return rows


def test_table1_kernel_message_delivery(benchmark, publish):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    table = comparison_table(
        "Table 1: 112-byte kernel->LPM message delivery time (ms)", rows)
    write_result("table1.txt", table)
    publish(table, cells=len(rows))

    for row in rows:
        if row["paper_ms"] is not None:
            assert_close_to_paper(row["measured_ms"], row["paper_ms"],
                                  rel_tol=0.12, what=row["case"])

    by_class = {}
    for row in rows:
        by_class.setdefault(row["host_class"], []).append(
            row["measured_ms"])
    # Shape: cost grows with load on every host type...
    for host_class, series in by_class.items():
        assert series == sorted(series), \
            "%s not monotone in load" % (host_class,)
    # ...and the SUN II degrades fastest (its (3,4] cell dwarfs the
    # VAX 11/750's, as in the paper).
    assert by_class[HostClass.SUN_2][-1] > \
        1.7 * by_class[HostClass.VAX_750][-1]
