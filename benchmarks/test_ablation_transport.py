"""Ablation A1: virtual circuits versus datagrams.

Section 3: "Virtual circuits, however, limit extensibility.  A datagram
based scheme would scale much better, but would require individual
authentication for each message."

This ablation quantifies both halves of that sentence at the transport
layer: for a growing session (N hosts, full-mesh conversations of M
messages per pair) it compares (a) connection state held open and setup
cost paid by circuits, against (b) the per-message authentication
charged by datagrams.
"""

import pytest

from repro.bench.tables import write_result
from repro.netsim import (
    DEFAULT_COST_MODEL,
    DatagramTransport,
    HostClass,
    Network,
    Simulator,
    StreamConnection,
)
from repro.util import format_table

MESSAGES_PER_PAIR = 4


def build_network(n_hosts):
    sim = Simulator(seed=5)
    net = Network(sim)
    names = ["h%02d" % i for i in range(n_hosts)]
    for name in names:
        net.add_node(name, HostClass.VAX_780)
    net.ethernet(names)
    return sim, net, names


def run_circuits(n_hosts):
    """Every pair opens an authenticated circuit and exchanges M
    messages; returns (elapsed_ms, open_connections)."""
    sim, net, names = build_network(n_hosts)
    delivered = [0]
    expected = 0

    def acceptor(endpoint, payload):
        endpoint.on_message = lambda p, ep: delivered.__setitem__(
            0, delivered[0] + 1)

    for name in names:
        net.node(name).listen("svc", acceptor)
    endpoints = []

    for i, a in enumerate(names):
        for b in names[i + 1:]:
            StreamConnection.connect(
                net, a, b, "svc",
                setup_ms=DEFAULT_COST_MODEL.connect_ms,
                on_established=endpoints.append)
    pair_count = n_hosts * (n_hosts - 1) // 2
    sim.run_until_true(lambda: len(endpoints) == pair_count,
                       timeout_ms=600_000.0)
    for endpoint in endpoints:
        for _ in range(MESSAGES_PER_PAIR):
            endpoint.send("m", nbytes=112)
            expected += 1
    sim.run_until_true(lambda: delivered[0] == expected,
                       timeout_ms=600_000.0)
    return sim.now_ms, net.open_connection_count()


def run_datagrams(n_hosts):
    """Same conversations over datagrams: no state, per-message auth."""
    sim, net, names = build_network(n_hosts)
    dgram = DatagramTransport(net)
    delivered = [0]
    expected = 0
    for name in names:
        dgram.bind(name, "svc",
                   lambda p, src: delivered.__setitem__(0, delivered[0] + 1))
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            for _ in range(MESSAGES_PER_PAIR):
                dgram.send(a, b, "svc", "m", nbytes=112)
                expected += 1
    sim.run_until_true(lambda: delivered[0] == expected,
                       timeout_ms=600_000.0)
    return sim.now_ms, net.open_connection_count()


def run_ablation():
    rows = []
    for n_hosts in (4, 8, 16, 32):
        circuit_ms, circuit_conns = run_circuits(n_hosts)
        dgram_ms, dgram_conns = run_datagrams(n_hosts)
        rows.append({"n_hosts": n_hosts,
                     "circuit_ms": circuit_ms,
                     "circuit_conns": circuit_conns,
                     "dgram_ms": dgram_ms,
                     "dgram_conns": dgram_conns})
    return rows


def build_session(transport, n_hosts=6):
    """A full PPM session (LPM level, not raw transport)."""
    from repro import PPMClient, PPMConfig, install, spinner_spec
    from repro.unixsim import World
    config = PPMConfig(transport=transport)
    world = World(seed=19, config=config)
    names = ["h%02d" % i for i in range(n_hosts)]
    for name in names:
        world.add_host(name, HostClass.VAX_780)
    world.ethernet()
    world.add_user("lfc", 1001)
    install(world)
    world.write_recovery_file("lfc", [names[0]])
    client = PPMClient(world, "lfc", names[0]).connect()
    for name in names[1:]:
        client.create_process("job-%s" % name, host=name,
                              program=spinner_spec(None))
    client.snapshot()  # warm
    return world, client


def run_lpm_level(transport):
    from repro import ControlAction, GlobalPid
    world, client = build_session(transport)
    stats = world.network.stats
    circuits = world.network.open_connection_count()
    messages_before = stats.stream_messages + stats.datagrams_sent
    start = world.sim.now_ms
    forest = client.snapshot()
    snapshot_ms = world.sim.now_ms - start
    messages = (stats.stream_messages + stats.datagrams_sent
                - messages_before)
    # One warm remote stop: a single round trip, where per-message
    # authentication cannot hide behind overlapped CPU.
    target = sorted(forest.records)[0]
    client.stop(target)
    client.cont(target)
    start = world.sim.now_ms
    client.stop(target)
    stop_ms = world.sim.now_ms - start
    return {"transport": transport, "circuits": circuits,
            "snapshot_ms": snapshot_ms, "stop_ms": stop_ms,
            "messages": messages}


def test_ablation_lpm_over_circuits_vs_datagrams(benchmark, publish):
    """The same PPM session on both transports: circuits hold kernel
    state and move fewer packets; datagrams hold none but pay acks and
    per-message authentication (visible as snapshot latency)."""
    rows = benchmark.pedantic(
        lambda: [run_lpm_level("stream"), run_lpm_level("datagram")],
        rounds=1, iterations=1)
    table = format_table(
        ["transport", "open circuits", "snapshot (ms)",
         "remote stop (ms)", "packets per snapshot"],
        [[r["transport"], r["circuits"], "%.1f" % r["snapshot_ms"],
          "%.1f" % r["stop_ms"], r["messages"]] for r in rows],
        title="A1b: a live PPM session over circuits vs datagrams "
              "(6 hosts)")
    write_result("ablation_transport_lpm.txt", table)
    publish(table)

    stream, dgram = rows
    # Circuits: one per sibling pair plus the tool stream.
    assert stream["circuits"] >= 5
    assert dgram["circuits"] <= 1  # only the tool stream
    # Datagrams move ~2x the packets (acks)...
    assert dgram["messages"] > 1.5 * stream["messages"]
    # ...and per-message authentication lands on the single-op critical
    # path (~2 x 9 ms per round trip), while a fanned-out snapshot hides
    # it behind the origin's serialised CPU.
    assert dgram["stop_ms"] >= stream["stop_ms"] + 15.0
    assert abs(dgram["snapshot_ms"] - stream["snapshot_ms"]) < 30.0


def test_ablation_circuits_vs_datagrams(benchmark, publish):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = format_table(
        ["hosts", "circuits: setup+xfer (ms)", "open circuits",
         "datagrams: xfer (ms)", "datagram state"],
        [[r["n_hosts"], "%.0f" % r["circuit_ms"], r["circuit_conns"],
          "%.0f" % r["dgram_ms"], r["dgram_conns"]] for r in rows],
        title="A1: virtual circuits vs datagrams "
              "(%d messages per host pair)" % MESSAGES_PER_PAIR)
    write_result("ablation_transport.txt", table)
    publish(table)

    # Circuits hold O(N^2) kernel state; datagrams hold none.
    last = rows[-1]
    assert last["circuit_conns"] == last["n_hosts"] * (
        last["n_hosts"] - 1) // 2
    assert all(r["dgram_conns"] == 0 for r in rows)
    # Connection state grows quadratically while datagram state stays
    # flat — the "datagrams scale much better" half of the claim...
    assert rows[-1]["circuit_conns"] > 30 * rows[0]["circuit_conns"] / 5
    # ...while per-message authentication is datagrams' recurring price:
    # each datagram pays auth that circuit messages do not.
    sim, net, names = build_network(2)
    per_msg_auth = DEFAULT_COST_MODEL.datagram_auth_ms
    assert per_msg_auth > 0
