"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure from the paper.  Wall
time (what pytest-benchmark measures) is the cost of running the
simulation; the scientifically meaningful numbers are the *simulated*
milliseconds, which are printed, written to ``benchmarks/results/`` and
attached to the benchmark's ``extra_info``.
"""

import pytest


def assert_close_to_paper(measured_ms, paper_ms, rel_tol=0.15,
                          what=""):
    """The shape criterion: within ``rel_tol`` of the published value."""
    assert paper_ms * (1 - rel_tol) <= measured_ms <= paper_ms * (1 + rel_tol), \
        "%s: measured %.1f ms vs paper %.1f ms (tolerance %.0f%%)" % (
            what, measured_ms, paper_ms, rel_tol * 100)


@pytest.fixture
def publish(benchmark, capsys):
    """Print a regenerated table and attach rows to the benchmark."""

    def _publish(text, **extra):
        with capsys.disabled():
            print()
            print(text)
        for key, value in extra.items():
            benchmark.extra_info[key] = value

    return _publish
