"""Figure 5: the four PPM topologies used for the Table 3 snapshot
measurements, rendered from the live overlay graphs.

Processes are identified by ``<host name, pid>`` exactly as in the
figure's caption.
"""

import pytest

from repro.bench.scenarios import (
    FIGURE5_TOPOLOGIES,
    build_figure5_topology,
    overlay_edges,
)
from repro.bench.tables import write_result
from repro.tracing import render_forest, render_topology


def build_all():
    results = []
    for topology in FIGURE5_TOPOLOGIES:
        world, origin = build_figure5_topology(topology)
        results.append((topology, world, origin))
    return results


def test_figure5_snapshot_configurations(benchmark, publish):
    results = benchmark.pedantic(build_all, rounds=1, iterations=1)
    sections = []
    for topology, world, origin in results:
        edges = overlay_edges(world)
        hosts = ["hostA"] + list(topology.remote_hosts)
        sections.append(render_topology(
            "%s: %s" % (topology.name, topology.description),
            hosts, edges))
        forest = origin.snapshot(prune=False)
        sections.append(render_forest(forest))
        sections.append("")

        # Six user processes per remote host, none on the origin.
        for host in topology.remote_hosts:
            assert len(forest.by_host(host)) == 6
        assert forest.by_host("hostA") == []
        # The overlay shape is exactly the prescribed one.
        assert set(edges) == {tuple(sorted(edge))
                              for edge in topology.edges}
        # Process identities render as <host name, pid>.
        rendered = render_forest(forest)
        assert "<%s," % topology.remote_hosts[0] in rendered

    text = "\n".join(sections)
    write_result("figure5.txt", text)
    publish(text)
    # The four topologies grow: 1, 2, 3, 4 remote hosts.
    assert [len(t.remote_hosts) for t, _w, _o in results] == [1, 2, 3, 4]
