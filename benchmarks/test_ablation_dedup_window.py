"""Ablation A2: the broadcast-retention time window.

Section 4: "A scheme for not retransmitting old broadcast requests has
been implemented using a signed timestamp ... The appropriate time
window for retaining old broadcast requests is a configuration
parameter whose optimum value will be derived from experience."

This ablation derives that experience: on a cyclic overlay, a LOCATE
broadcast for a nonexistent process keeps circulating whenever the
retention window is shorter than the cycle's traversal time, multiplying
forwards; a sufficient window suppresses the echo on first return.
"""

import pytest

from repro import PPMClient, PPMConfig, spinner_spec, install
from repro.bench.tables import write_result
from repro.tracing import TraceEventType
from repro.unixsim import World
from repro.netsim import HostClass
from repro.util import format_table


def build_ring(window_ms):
    """Four LPMs in a ring (cycle) with the given retention window."""
    config = PPMConfig(broadcast_dedup_window_ms=window_ms)
    world = World(seed=9, config=config)
    names = ["h0", "h1", "h2", "h3"]
    for name in names:
        world.add_host(name, HostClass.VAX_780)
    world.ethernet()
    world.add_user("lfc", 1001)
    install(world)
    world.write_recovery_file("lfc", ["h0"])
    # Build ring edges h0-h1-h2-h3-h0 by creating one process across
    # each edge from the right side.
    clients = {name: PPMClient(world, "lfc", name).connect()
               for name in names}
    for src, dst in [("h0", "h1"), ("h1", "h2"), ("h2", "h3"),
                     ("h3", "h0")]:
        clients[src].create_process("edge-%s" % dst, host=dst,
                                    program=spinner_spec(None))
    return world, clients


def run_case(window_ms):
    world, clients = build_ring(window_ms)
    before = world.recorder.count(TraceEventType.BROADCAST_FORWARDED)
    lpm = world.lpms[("h0", "lfc")]
    # LOCATE a process that exists nowhere: the broadcast floods the
    # ring and, with a short window, its echo is re-accepted.
    lpm.locate("h2", 9999, lambda reply: None, timeout_ms=4_000.0)
    world.run_for(30_000.0)
    forwards = world.recorder.count(
        TraceEventType.BROADCAST_FORWARDED) - before
    duplicates = sum(world.lpms[(name, "lfc")].broadcast.duplicates_dropped
                     for name in ("h0", "h1", "h2", "h3"))
    hop_limited = sum(world.lpms[(name, "lfc")].broadcast.hop_limited
                      for name in ("h0", "h1", "h2", "h3"))
    return forwards, duplicates, hop_limited


def run_ablation():
    rows = []
    for window_ms in (0.0, 50.0, 200.0, 60_000.0):
        forwards, duplicates, hop_limited = run_case(window_ms)
        rows.append({"window_ms": window_ms, "forwards": forwards,
                     "duplicates": duplicates,
                     "hop_limited": hop_limited})
    return rows


def test_ablation_dedup_window(benchmark, publish):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = format_table(
        ["retention window (ms)", "broadcast forwards",
         "duplicates dropped", "hop-limit kills"],
        [[("%.0f" % r["window_ms"]), r["forwards"], r["duplicates"],
          r["hop_limited"]] for r in rows],
        title="A2: broadcast retention window on a 4-host ring "
              "(one LOCATE broadcast)")
    write_result("ablation_dedup_window.txt", table)
    publish(table)

    by_window = {r["window_ms"]: r for r in rows}
    # A zero window never remembers: the request loops until the hop
    # limit kills it.
    assert by_window[0.0]["forwards"] > 3 * by_window[60_000.0]["forwards"]
    assert by_window[0.0]["hop_limited"] > 0
    # A window longer than the ring's traversal time suppresses every
    # echo with no retransmissions.
    assert by_window[60_000.0]["duplicates"] > 0
    assert by_window[60_000.0]["hop_limited"] == 0
    # Forward volume decreases monotonically with the window.
    forwards = [r["forwards"] for r in rows]
    assert forwards == sorted(forwards, reverse=True)
