"""Table 2: elapsed time of process creation and termination events (ms)
by topological distance in the LPM overlay.

Paper values::

    action      within host   one hop   two hops
    create          77          N/A       N/A
    stop            30          199       210
    terminate       30          199       210

plus section 8: "Remote process creation, once a connection between
sibling managers exist, takes 177 milliseconds under lightly loaded
conditions."

Methodology: a warmed hostA-hostB-hostC overlay chain (LPMs created,
channels authenticated, handlers spun up, the two-hop route learned from
a snapshot reply — all excluded from the timings exactly as the paper
excludes LPM/connection setup).  Control of the two-hop process is
*forwarded* through hostB's dispatcher; hostA never opens a channel to
hostC.
"""

import statistics

import pytest

from repro.bench.scenarios import TABLE2_PAPER, build_table2_chain
from repro.bench.tables import comparison_table, write_result

from .conftest import assert_close_to_paper

REPEATS = 5


def timed(world, fn):
    start = world.sim.now_ms
    fn()
    return world.sim.now_ms - start


def run_table2():
    chain = build_table2_chain()
    world = chain.world
    measured = {}

    # --- create ---
    measured[("create", "within")] = statistics.mean(
        timed(world, lambda: chain.fresh_target("within"))
        for _ in range(REPEATS))
    measured[("create", "one-hop")] = statistics.mean(
        timed(world, lambda: chain.origin.create_process(
            "victim", host="hostB", program={"type": "spinner",
                                             "duration_ms": None}))
        for _ in range(REPEATS))

    # --- stop / terminate at each distance ---
    anchors = {"within": chain.local, "one-hop": chain.one_hop,
               "two-hop": chain.two_hop}
    for distance, anchor in anchors.items():
        stop_times, term_times = [], []
        for _ in range(REPEATS):
            stop_times.append(timed(
                world, lambda: chain.origin.stop(anchor)))
            chain.origin.cont(anchor)
            victim = chain.fresh_target(distance)
            term_times.append(timed(
                world, lambda: chain.origin.terminate(victim)))
        measured[("stop", distance)] = statistics.mean(stop_times)
        measured[("terminate", distance)] = statistics.mean(term_times)

    rows = []
    for key in [("create", "within"), ("create", "one-hop"),
                ("stop", "within"), ("stop", "one-hop"),
                ("stop", "two-hop"), ("terminate", "within"),
                ("terminate", "one-hop"), ("terminate", "two-hop")]:
        rows.append({"case": "%s %s" % key,
                     "paper_ms": TABLE2_PAPER.get(key),
                     "measured_ms": measured[key], "key": key})
    return rows


def test_table2_process_control(benchmark, publish):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    table = comparison_table(
        "Table 2: process creation and control events (ms) by "
        "topological distance", rows)
    write_result("table2.txt", table)
    publish(table)

    measured = {row["key"]: row["measured_ms"] for row in rows}
    for row in rows:
        if row["paper_ms"] is not None:
            assert_close_to_paper(row["measured_ms"], row["paper_ms"],
                                  rel_tol=0.10, what=row["case"])

    # Shape: each overlay hop costs a lot the first time (the request
    # crosses the network) and little after (pure forwarding).
    assert measured[("stop", "one-hop")] > 5 * measured[("stop", "within")]
    extra_hop = measured[("stop", "two-hop")] - measured[("stop", "one-hop")]
    first_hop = measured[("stop", "one-hop")] - measured[("stop", "within")]
    assert extra_hop < 0.15 * first_hop
