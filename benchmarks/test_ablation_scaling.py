"""Ablation A4: scaling into the tens of nodes.

Section 8: "The PPM's algorithms were designed to scale well into the
tens of nodes, but we have yet to stress test our implementation."

This is that stress test: star sessions of 2 to 40 hosts, measuring
snapshot latency, messages on the wire, and per-host record counts.
The claim holds if snapshot cost grows roughly linearly (the origin's
serialised sends/merges dominate) rather than quadratically.
"""

import pytest

from repro import PPMClient, spinner_spec, install
from repro.bench.tables import write_result
from repro.netsim import HostClass
from repro.unixsim import World
from repro.util import format_table


def build_star(n_hosts):
    world = World(seed=17)
    names = ["h%02d" % i for i in range(n_hosts)]
    for name in names:
        world.add_host(name, HostClass.VAX_780)
    world.ethernet()
    world.add_user("lfc", 1001)
    install(world)
    world.write_recovery_file("lfc", [names[0]])
    origin = PPMClient(world, "lfc", names[0]).connect()
    for name in names[1:]:
        origin.create_process("job-%s" % name, host=name,
                              program=spinner_spec(None))
    origin.snapshot()  # warm-up
    return world, origin


def run_case(n_hosts):
    world, origin = build_star(n_hosts)
    messages_before = world.network.stats.stream_messages
    start = world.sim.now_ms
    forest = origin.snapshot(prune=False)
    elapsed = world.sim.now_ms - start
    messages = world.network.stats.stream_messages - messages_before
    assert len(forest) == n_hosts - 1
    return elapsed, messages


def run_ablation():
    rows = []
    for n_hosts in (2, 5, 10, 20, 40):
        elapsed, messages = run_case(n_hosts)
        rows.append({"n_hosts": n_hosts, "snapshot_ms": elapsed,
                     "messages": messages})
    return rows


def test_ablation_scaling(benchmark, publish):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = format_table(
        ["hosts", "snapshot (ms)", "overlay messages",
         "ms per remote host"],
        [[r["n_hosts"], "%.1f" % r["snapshot_ms"], r["messages"],
          "%.1f" % (r["snapshot_ms"] / max(r["n_hosts"] - 1, 1),)]
         for r in rows],
        title="A4: snapshot cost versus session size (star overlay)")
    write_result("ablation_scaling.txt", table)
    publish(table)

    # One request and one reply per remote host, plus the tool's own
    # request/reply pair: 2(N-1) + 2.
    for row in rows:
        assert row["messages"] == 2 * (row["n_hosts"] - 1) + 2
    # Roughly linear growth: per-host cost at 40 hosts is within 3x of
    # the per-host cost at 5 hosts (serialised origin CPU dominates,
    # no quadratic blow-up).
    per_host = {r["n_hosts"]: r["snapshot_ms"] / (r["n_hosts"] - 1)
                for r in rows}
    assert per_host[40] < 3 * per_host[5]
    # And the tens-of-nodes session still answers promptly (< 5 s).
    assert rows[-1]["snapshot_ms"] < 5_000.0
