"""Ablation A6: handler reuse inside the LPM.

Section 6: "Since process creation in UNIX is relatively expensive,
processes that have handled a request may be given further requests,
rather than simply creating new processes."

This ablation measures what reuse buys: the same burst of remote
operations with the reuse pool enabled (the paper's design) versus a
pool of size one combined with no idle handler kept (approximated by
charging a spawn for every request via a cold pool), and the spawn/reuse
counters under concurrent gathers.
"""

import pytest

from repro import ControlAction, PPMClient, PPMConfig, install, spinner_spec
from repro.bench.tables import write_result
from repro.netsim import HostClass
from repro.unixsim import World
from repro.util import format_table

OPS = 20


def build(pool_max):
    config = PPMConfig(handler_pool_max=pool_max)
    world = World(seed=29, config=config)
    for name in ("origin", "remote"):
        world.add_host(name, HostClass.VAX_780)
    world.ethernet()
    world.add_user("lfc", 1001)
    install(world)
    world.write_recovery_file("lfc", ["origin"])
    client = PPMClient(world, "lfc", "origin").connect()
    gpid = client.create_process("target", host="remote",
                                 program=spinner_spec(None))
    return world, client, gpid


def run_burst(pool_max, force_cold):
    world, client, gpid = build(pool_max)
    lpm = world.lpms[("origin", "lfc")]
    start = world.now_ms
    for _ in range(OPS):
        for action in (ControlAction.STOP, ControlAction.CONTINUE):
            if force_cold:
                # A design without reuse: drop the pool before every
                # request so each one pays process creation.
                lpm.pool.shutdown()
            client.control(gpid, action)
    elapsed = world.now_ms - start
    return {"elapsed_ms": elapsed, "per_op_ms": elapsed / (2 * OPS),
            "spawned": lpm.pool.spawned, "reused": lpm.pool.reused}


def run_ablation():
    rows = []
    rows.append(dict(run_burst(pool_max=8, force_cold=False),
                     mode="reuse pool (paper design)"))
    rows.append(dict(run_burst(pool_max=1, force_cold=True),
                     mode="spawn per request"))
    return rows


def test_ablation_handler_reuse(benchmark, publish):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = format_table(
        ["dispatcher design", "per-op (ms)", "handlers spawned",
         "requests reused"],
        [[r["mode"], "%.1f" % r["per_op_ms"], r["spawned"], r["reused"]]
         for r in rows],
        title="A6: handler reuse vs spawn-per-request "
              "(%d remote control ops)" % (2 * OPS))
    write_result("ablation_handler_pool.txt", table)
    publish(table)

    reuse, cold = rows
    # Reuse spawns once and reuses thereafter.
    assert reuse["spawned"] <= 2
    assert reuse["reused"] >= 2 * OPS - 2
    # Spawn-per-request pays a fresh creation every time...
    assert cold["spawned"] >= 2 * OPS
    # ...which shows up directly in latency.
    assert cold["per_op_ms"] > reuse["per_op_ms"] + 10.0


def test_pool_concurrency_under_parallel_gathers(benchmark, publish):
    """Concurrent gathers from several tools exercise multiple handlers
    at once; the pool's peak stays within the configured bound."""
    def run():
        config = PPMConfig(handler_pool_max=4)
        world = World(seed=33, config=config)
        names = ["h%d" % i for i in range(5)]
        for name in names:
            world.add_host(name, HostClass.VAX_780)
        world.ethernet()
        world.add_user("lfc", 1001)
        install(world)
        world.write_recovery_file("lfc", ["h0"])
        client = PPMClient(world, "lfc", "h0").connect()
        for name in names[1:]:
            client.create_process("job-%s" % name, host=name,
                                  program=spinner_spec(None))
        client.snapshot()
        lpm = world.lpms[("h0", "lfc")]
        return lpm.pool.peak_busy, lpm.pool.size()

    peak, size = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("peak busy handlers: %d, pool size after: %d" % (peak, size))
    assert peak >= 2  # the gather really did fan out concurrently
    assert size <= 5  # bounded by config (+1 transient)
